// Model-checker kernel tests: expression evaluation, guarded-command
// successors, invariant checking with trace extraction, edge never-claims,
// and response liveness (lasso detection, stutter-deadlock semantics).
#include <gtest/gtest.h>

#include "common/strings.h"
#include "mc/checker.h"
#include "mc/model.h"

namespace procheck::mc {
namespace {

// A 3-position token ring: pos cycles 0 -> 1 -> 2 -> 0.
Model ring_model() {
  Model m;
  int pos = m.add_var("pos", 3, 0, {"p0", "p1", "p2"});
  for (std::int32_t i = 0; i < 3; ++i) {
    Command cmd;
    cmd.label = "step" + std::to_string(i);
    cmd.guard = Expr::eq(pos, i);
    cmd.updates = {{pos, (i + 1) % 3}};
    m.add_command(std::move(cmd));
  }
  return m;
}

// A counter that can only grow to its bound and then deadlocks.
Model counter_model(std::int32_t bound) {
  Model m;
  int c = m.add_var("c", bound + 1, 0);
  for (std::int32_t i = 0; i < bound; ++i) {
    Command cmd;
    cmd.label = "inc" + std::to_string(i);
    cmd.guard = Expr::eq(c, i);
    cmd.updates = {{c, i + 1}};
    m.add_command(std::move(cmd));
  }
  return m;
}

// --- Expr ---------------------------------------------------------------------

TEST(Expr, Atoms) {
  State s{2, 5};
  EXPECT_TRUE(Expr::eq(0, 2).eval(s));
  EXPECT_FALSE(Expr::eq(0, 3).eval(s));
  EXPECT_TRUE(Expr::ne(1, 4).eval(s));
  EXPECT_TRUE(Expr::lt(0, 3).eval(s));
  EXPECT_FALSE(Expr::lt(0, 2).eval(s));
  EXPECT_TRUE(Expr::gt(1, 4).eval(s));
  EXPECT_TRUE(Expr::constant(true).eval(s));
  EXPECT_FALSE(Expr::constant(false).eval(s));
}

TEST(Expr, Connectives) {
  State s{1};
  Expr yes = Expr::eq(0, 1);
  Expr no = Expr::eq(0, 0);
  EXPECT_TRUE(Expr::land(yes, yes).eval(s));
  EXPECT_FALSE(Expr::land(yes, no).eval(s));
  EXPECT_TRUE(Expr::lor(no, yes).eval(s));
  EXPECT_FALSE(Expr::lor(no, no).eval(s));
  EXPECT_TRUE(Expr::lnot(no).eval(s));
  EXPECT_TRUE(Expr::all({yes, yes, yes}).eval(s));
  EXPECT_FALSE(Expr::all({yes, no}).eval(s));
  EXPECT_TRUE(Expr::any({no, yes}).eval(s));
  EXPECT_TRUE(Expr::all({}).eval(s));   // empty conjunction
  EXPECT_FALSE(Expr::any({}).eval(s));  // empty disjunction
}

// --- Model --------------------------------------------------------------------

TEST(Model, VariablesAndValueNames) {
  Model m = ring_model();
  EXPECT_EQ(m.var("pos"), 0);
  EXPECT_EQ(m.var("missing"), -1);
  EXPECT_EQ(m.domain(0), 3);
  EXPECT_EQ(m.value_name(0, 1), "p1");
  EXPECT_EQ(m.value_index(0, "p2"), 2);
  EXPECT_EQ(m.value_index(0, "p9"), -1);
  EXPECT_EQ(m.var_count(), 1u);
}

TEST(Model, SuccessorsRespectGuards) {
  Model m = ring_model();
  int count = 0;
  m.successors(m.initial(), [&](const State& next, const Command& cmd) {
    ++count;
    EXPECT_EQ(next[0], 1);
    EXPECT_EQ(cmd.label, "step0");
  });
  EXPECT_EQ(count, 1);
}

TEST(Model, CopyAssignReadsPreState) {
  Model m;
  int a = m.add_var("a", 4, 2);
  int b = m.add_var("b", 4, 0);
  Command cmd;
  cmd.label = "swapish";
  cmd.guard = Expr::constant(true);
  // b := a (pre), a := 0 — order must not matter for the copy source.
  cmd.updates = {{b, 0, a}, {a, 0}};
  m.add_command(std::move(cmd));
  bool saw = false;
  m.successors(m.initial(), [&](const State& next, const Command&) {
    saw = true;
    EXPECT_EQ(next[1], 2);  // copied the pre-state value
    EXPECT_EQ(next[0], 0);
  });
  EXPECT_TRUE(saw);
}

TEST(Model, LaterAssignmentWins) {
  Model m;
  int a = m.add_var("a", 4, 0);
  Command cmd;
  cmd.guard = Expr::constant(true);
  cmd.updates = {{a, 1}, {a, 3}};
  m.add_command(std::move(cmd));
  m.successors(m.initial(), [&](const State& next, const Command&) { EXPECT_EQ(next[0], 3); });
}

TEST(Model, RenderAndSmvDump) {
  Model m = ring_model();
  EXPECT_EQ(m.render_state(m.initial()), "pos=p0");
  std::string smv = m.to_smv();
  EXPECT_TRUE(contains(smv, "MODULE main"));
  EXPECT_TRUE(contains(smv, "pos : {p0, p1, p2}"));
  EXPECT_TRUE(contains(smv, "step0"));
}

// --- Invariants -----------------------------------------------------------------

TEST(Invariant, HoldsOnRing) {
  Model m = ring_model();
  Checker checker(m);
  CheckStats stats;
  // pos < 3 always.
  auto cex = checker.check_invariant(Expr::lt(0, 3), &stats);
  EXPECT_FALSE(cex.has_value());
  EXPECT_EQ(stats.states_explored, 3u);
  EXPECT_FALSE(stats.bound_hit);
}

TEST(Invariant, ViolationWithMinimalTrace) {
  Model m = counter_model(5);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_invariant(Expr::lt(0, 3), &stats);  // violated at c = 3
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->steps.size(), 3u);  // BFS finds the shortest path
  EXPECT_EQ(cex->steps.back().post[0], 3);
  EXPECT_EQ(cex->loop_start, -1);
}

TEST(Invariant, InitialStateViolation) {
  Model m = counter_model(2);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_invariant(Expr::gt(0, 0), &stats);  // c > 0 fails at init
  ASSERT_TRUE(cex.has_value());
  EXPECT_TRUE(cex->steps.empty());
}

TEST(Invariant, MaxStatesBoundsExploration) {
  Model m = counter_model(100);
  Checker checker(m);
  CheckStats stats;
  CheckOptions options;
  options.max_states = 10;
  auto cex = checker.check_invariant(Expr::lt(0, 50), &stats, options);
  EXPECT_FALSE(cex.has_value());  // bound hit before the violation
  EXPECT_TRUE(stats.bound_hit);
}

TEST(Invariant, TraceRenders) {
  Model m = counter_model(5);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_invariant(Expr::lt(0, 2), &stats);
  ASSERT_TRUE(cex.has_value());
  std::string text = cex->render(m);
  EXPECT_TRUE(contains(text, "inc0"));
  EXPECT_TRUE(contains(text, "c="));
}

// --- Edge never-claims -------------------------------------------------------------

TEST(EdgeNever, FindsLabelledEdge) {
  Model m = counter_model(5);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_edge_never(
      [](const State&, const Command& cmd, const State&) { return cmd.label == "inc3"; },
      &stats);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->steps.size(), 4u);
  EXPECT_EQ(cex->steps.back().label, "inc3");
}

TEST(EdgeNever, VerifiedWhenEdgeAbsent) {
  Model m = counter_model(5);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_edge_never(
      [](const State&, const Command& cmd, const State&) { return cmd.label == "nope"; },
      &stats);
  EXPECT_FALSE(cex.has_value());
}

TEST(EdgeNever, AllowedFilterPrunes) {
  // CEGAR refinement semantics: banning the offending command verifies the
  // property.
  Model m = counter_model(5);
  Checker checker(m);
  CheckStats stats;
  CheckOptions options;
  options.allowed = [](const State&, const Command& cmd, const State&) {
    return cmd.label != "inc2";  // cuts the path at c = 2
  };
  auto cex = checker.check_edge_never(
      [](const State&, const Command& cmd, const State&) { return cmd.label == "inc3"; },
      &stats, options);
  EXPECT_FALSE(cex.has_value());
}

TEST(EdgeNever, MetaIsCarriedIntoTrace) {
  Model m;
  int v = m.add_var("v", 2, 0);
  Command cmd;
  cmd.label = "adv";
  cmd.guard = Expr::eq(v, 0);
  cmd.updates = {{v, 1}};
  cmd.meta.actor = CommandMeta::Actor::kAdversary;
  cmd.meta.kind = CommandMeta::Kind::kInject;
  cmd.meta.message = "attach_reject";
  m.add_command(std::move(cmd));
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_edge_never(
      [](const State&, const Command& c, const State&) {
        return c.meta.message == "attach_reject";
      },
      &stats);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->adversary_steps().size(), 1u);
  EXPECT_EQ(cex->adversary_steps()[0]->meta.kind, CommandMeta::Kind::kInject);
}

// --- Response liveness ----------------------------------------------------------------

// request/response model: req command raises `pending`; resp clears it; a
// `lazy` self-loop lets the system stall forever when enabled.
Model request_model(bool with_lazy_loop) {
  Model m;
  int st = m.add_var("st", 2, 0, {"idle", "waiting"});
  Command req;
  req.label = "request";
  req.guard = Expr::eq(st, 0);
  req.updates = {{st, 1}};
  m.add_command(std::move(req));
  Command resp;
  resp.label = "respond";
  resp.guard = Expr::eq(st, 1);
  resp.updates = {{st, 0}};
  m.add_command(std::move(resp));
  if (with_lazy_loop) {
    Command lazy;
    lazy.label = "lazy";
    lazy.guard = Expr::eq(st, 1);
    lazy.updates = {};
    m.add_command(std::move(lazy));
  }
  return m;
}

EdgePred label_is(std::string name) {
  return [name](const State&, const Command& cmd, const State&) { return cmd.label == name; };
}

TEST(Response, ViolatedByStallingLoop) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats);
  ASSERT_TRUE(cex.has_value());
  EXPECT_GE(cex->loop_start, 0);
  // The loop must not contain the response.
  for (std::size_t i = static_cast<std::size_t>(cex->loop_start); i < cex->steps.size(); ++i) {
    EXPECT_NE(cex->steps[i].label, "respond");
  }
}

TEST(Response, HoldsWithoutStallingLoop) {
  // Note G(req -> F resp) holds here because the only infinite behavior
  // alternates request/respond.
  Model m = request_model(/*with_lazy_loop=*/false);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats);
  EXPECT_FALSE(cex.has_value());
}

TEST(Response, DeadlockWithPendingObligationIsViolation) {
  // After `request` the system deadlocks: the stutter extension makes the
  // unanswered trigger a violation.
  Model m;
  int st = m.add_var("st", 2, 0);
  Command req;
  req.label = "request";
  req.guard = Expr::eq(st, 0);
  req.updates = {{st, 1}};
  m.add_command(std::move(req));  // no command enabled at st = 1
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats);
  ASSERT_TRUE(cex.has_value());
  EXPECT_GE(cex->loop_start, 0);
  EXPECT_EQ(cex->steps.back().label, "(stutter)");
}

TEST(Response, NoTriggerNoViolation) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("never_fires"), label_is("respond"), &stats);
  EXPECT_FALSE(cex.has_value());
}

TEST(Response, TriggerAndResponseOnSameEdgeIsSatisfied) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  // An edge that is both trigger and response discharges itself.
  auto cex = checker.check_response(label_is("request"), label_is("request"), &stats);
  EXPECT_FALSE(cex.has_value());
}

TEST(Response, AllowedFilterAppliesToLiveness) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  CheckOptions options;
  options.allowed = [](const State&, const Command& cmd, const State&) {
    return cmd.label != "lazy";
  };
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats, options);
  EXPECT_FALSE(cex.has_value());
}

// --- Interned-state kernel: search equivalence pins -----------------------------
//
// The visited set is an interned arena + open-addressing table with an
// incrementally maintained guard cache (guards are only re-evaluated when a
// transition changed a variable their read-set mentions). These tests pin
// exact visited counts so any rewrite that silently explores a different
// state space — over- or under-approximating — fails loudly.

// Two independent toggles: 4 reachable states, discovered over 8 edges,
// with every non-initial state reachable along two paths (dedup must fire).
Model toggle_model() {
  Model m;
  int a = m.add_var("a", 2, 0);
  int b = m.add_var("b", 2, 0);
  for (std::int32_t v = 0; v < 2; ++v) {
    Command ca;
    ca.label = "a" + std::to_string(v);
    ca.guard = Expr::eq(a, v);
    ca.updates = {{a, 1 - v}};
    m.add_command(std::move(ca));
    Command cb;
    cb.label = "b" + std::to_string(v);
    cb.guard = Expr::eq(b, v);
    cb.updates = {{b, 1 - v}};
    m.add_command(std::move(cb));
  }
  return m;
}

TEST(Kernel, VisitedStateCountsArePinned) {
  CheckStats stats;
  auto cex = Checker(ring_model()).check_invariant(Expr::lt(0, 3), &stats);
  EXPECT_FALSE(cex.has_value());
  EXPECT_EQ(stats.states_explored, 3u);
  EXPECT_EQ(stats.edges_explored, 3u);

  CheckStats toggles;
  cex = Checker(toggle_model()).check_invariant(Expr::constant(true), &toggles);
  EXPECT_FALSE(cex.has_value());
  EXPECT_EQ(toggles.states_explored, 4u);  // interning dedups the merged paths
  EXPECT_EQ(toggles.edges_explored, 8u);   // 2 enabled commands per state
}

TEST(Kernel, CommandDepsCoverGuardReadsAndWrites) {
  Model m = toggle_model();
  ASSERT_EQ(m.deps().size(), 4u);
  EXPECT_EQ(m.deps()[0].guard_reads, var_bit(0));  // a0 reads a
  EXPECT_EQ(m.deps()[0].writes, var_bit(0));       // a0 writes a
  EXPECT_EQ(m.deps()[1].guard_reads, var_bit(1));  // b0 reads b
  EXPECT_EQ(m.commands()[2].index, 2);
  std::vector<int> read;
  Expr::land(Expr::eq(0, 1), Expr::lnot(Expr::ne(1, 0))).collect_vars(read);
  EXPECT_EQ(read, (std::vector<int>{0, 1}));
}

TEST(Kernel, SameValueWritesDoNotCreateNewStates) {
  // A command that assigns a variable its current value produces a
  // successor identical to the pre-state. The changed-mask is computed
  // from values (not from the static write-set), so the guard cache stays
  // consistent and the successor simply dedups onto its source.
  Model m = ring_model();
  Command noop;
  noop.label = "noop";
  noop.guard = Expr::eq(0, 0);
  noop.updates = {{0, 0}};  // pos := pos (it is 0 whenever enabled)
  m.add_command(std::move(noop));
  CheckStats stats;
  auto cex = Checker(m).check_invariant(Expr::lt(0, 3), &stats);
  EXPECT_FALSE(cex.has_value());
  EXPECT_EQ(stats.states_explored, 3u);  // noop adds edges, never states
  EXPECT_EQ(stats.edges_explored, 4u);
}

TEST(Kernel, GuardsOnUnchangedVariablesStayCached) {
  // `watch` fires only while b stays at its initial value; commands
  // touching `a` must not disturb the cached b-guards. If the pruned
  // evaluation were wrong in either direction the reachable set would
  // change: 4 toggle states plus the c=1 variants reached via watch.
  Model m = toggle_model();
  int c = m.add_var("c", 2, 0);
  Command watch;
  watch.label = "watch";
  watch.guard = Expr::land(Expr::eq(1, 0), Expr::eq(c, 0));  // reads b and c only
  watch.updates = {{c, 1}};
  m.add_command(std::move(watch));
  CheckStats stats;
  auto cex = Checker(m).check_invariant(Expr::constant(true), &stats);
  EXPECT_FALSE(cex.has_value());
  // States: (a,b,c) with c=0: all 4; c=1 reachable only from b=0: (0,0,1),
  // (1,0,1), then b toggles freely: (0,1,1), (1,1,1) -> 8 total.
  EXPECT_EQ(stats.states_explored, 8u);
}

TEST(Kernel, VisitedBytesAreReported) {
  CheckStats stats;
  Checker(toggle_model()).check_invariant(Expr::constant(true), &stats);
  EXPECT_GT(stats.visited_bytes, 0u);

  CheckStats lasso;
  Model rm = request_model(/*with_lazy_loop=*/true);
  Checker(rm).check_response(label_is("request"), label_is("respond"), &lasso);
  EXPECT_GT(lasso.visited_bytes, 0u);
}

TEST(Kernel, LivenessProductCountsArePinned) {
  // request_model explores exactly two product nodes: (idle, clear) and
  // (waiting, pending); respond folds back onto the initial node.
  Model m = request_model(/*with_lazy_loop=*/true);
  CheckStats stats;
  auto cex = Checker(m).check_response(label_is("request"), label_is("respond"), &stats);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(stats.states_explored, 2u);
}

TEST(Trace, DotExportHighlightsAdversaryAndLoop) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats);
  ASSERT_TRUE(cex.has_value());
  std::string dot = cex->to_dot(m);
  EXPECT_TRUE(contains(dot, "digraph counterexample"));
  EXPECT_TRUE(contains(dot, "request"));
  EXPECT_TRUE(contains(dot, "style=dashed"));  // the lasso loop edge
}

TEST(Response, LassoRenderMarksLoop) {
  Model m = request_model(/*with_lazy_loop=*/true);
  Checker checker(m);
  CheckStats stats;
  auto cex = checker.check_response(label_is("request"), label_is("respond"), &stats);
  ASSERT_TRUE(cex.has_value());
  std::string text = cex->render(m);
  EXPECT_TRUE(contains(text, "loop"));
}

}  // namespace
}  // namespace procheck::mc
