// Counterexample-replayer tests: verified counterexamples from the CEGAR
// loop must execute against the live stacks and exhibit the attack's
// observable impact (the paper's automated testbed-validation step).
#include <gtest/gtest.h>

#include "checker/prochecker.h"
#include "testing/conformance.h"
#include "testing/replay.h"
#include "ue/emm_state.h"

namespace procheck::testing {
namespace {

mc::CounterExample attack_trace(const ue::StackProfile& profile, const std::string& prop_id) {
  checker::AnalysisOptions options;
  options.only_properties = {prop_id};
  checker::ImplementationReport rep = checker::ProChecker::analyze(profile, options);
  for (const checker::PropertyResult& r : rep.results) {
    if (r.property_id == prop_id && r.counterexample) return *r.counterexample;
  }
  ADD_FAILURE() << prop_id << " produced no counterexample for " << profile.name;
  return {};
}

// The counterexample traces start from the initial state (they replay the
// attach themselves), so the rig does NOT pre-attach.
struct Rig {
  Testbed tb;
  int conn;
  explicit Rig(const ue::StackProfile& profile)
      : conn(tb.add_ue(profile, kTestImsi, kTestKey)) {}
};

TEST(Replay, P1TraceRealizesKeyDesync) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::cls(), "S01");
  Rig rig(ue::StackProfile::cls());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  EXPECT_TRUE(report.completed) << report.failure;
  EXPECT_GT(report.adversary_steps, 0);
  // Impact: a fresh (battery-draining) AKA run and a desynchronized context.
  EXPECT_GE(report.ue_authentications, 2);
  EXPECT_FALSE(report.ue_context_valid);
}

TEST(Replay, P3LassoRealizesProcedureAbort) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::cls(), "S02");
  ASSERT_GE(cex.loop_start, 0);  // a liveness lasso
  Rig rig(ue::StackProfile::cls());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  EXPECT_TRUE(report.completed) << report.failure;
  // Impact: the reallocation was abandoned after all retransmissions; both
  // sides keep using whatever GUTI the attach established.
  EXPECT_GE(report.mme_aborted_procedures, 1);
  EXPECT_EQ(rig.tb.ue(rig.conn).guti(), rig.tb.mme().guti(rig.conn));
}

TEST(Replay, I1TraceRealizesReplayAcceptanceOnSrs) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::srsue(), "S05");
  Rig rig(ue::StackProfile::srsue());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  EXPECT_TRUE(report.completed) << report.failure;
  EXPECT_GE(report.ue_replays_accepted, 1);
}

TEST(Replay, I2TraceRealizesPlainAcceptanceOnOai) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::oai(), "S06");
  Rig rig(ue::StackProfile::oai());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  EXPECT_TRUE(report.completed) << report.failure;
  EXPECT_GE(report.ue_plain_accepted, 1);
}

TEST(Replay, FabricatedRejectTraceDeregistersUe) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::cls(), "S14");
  Rig rig(ue::StackProfile::cls());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  EXPECT_TRUE(report.completed) << report.failure;
  EXPECT_TRUE(ue::is_deregistered(report.final_ue_state));
}

TEST(Replay, ReportListsActions) {
  mc::CounterExample cex = attack_trace(ue::StackProfile::cls(), "S14");
  Rig rig(ue::StackProfile::cls());
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay(cex);
  ASSERT_FALSE(report.actions.empty());
  bool saw_inject = false;
  for (const std::string& a : report.actions) {
    saw_inject = saw_inject || a.find("inject") != std::string::npos;
  }
  EXPECT_TRUE(saw_inject);
}

TEST(Replay, EmptyTraceCompletesTrivially) {
  Rig rig(ue::StackProfile::cls());
  complete_attach(rig.tb, rig.conn);
  CounterexampleReplayer replayer(rig.tb, rig.conn);
  ReplayReport report = replayer.replay({});
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.adversary_steps, 0);
  EXPECT_TRUE(ue::is_registered(report.final_ue_state));
}

}  // namespace
}  // namespace procheck::testing
