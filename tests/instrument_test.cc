#include <gtest/gtest.h>

#include "common/strings.h"
#include "instrument/source_instrumentor.h"
#include "instrument/trace_log.h"

namespace procheck::instrument {
namespace {

// --- trace log ------------------------------------------------------------

TEST(TraceLog, RenderFormats) {
  EXPECT_EQ(render({LogRecord::Kind::kEnter, "recv_attach_accept", ""}),
            "[ENTER] recv_attach_accept");
  EXPECT_EQ(render({LogRecord::Kind::kGlobal, "emm_state", "EMM_REGISTERED"}),
            "[GLOBAL] emm_state = EMM_REGISTERED");
  EXPECT_EQ(render({LogRecord::Kind::kLocal, "mac_valid", "1"}), "[LOCAL] mac_valid = 1");
  EXPECT_EQ(render({LogRecord::Kind::kTestCase, "TC_NAS_ATT_01", ""}),
            "[TEST] TC_NAS_ATT_01");
}

TEST(TraceLog, TextParseRoundTrip) {
  TraceLogger log;
  log.test_case("TC_1");
  log.enter("air_msg_handler");
  log.enter("recv_attach_accept");
  log.global("emm_state", "EMM_REGISTERED_INITIATED");
  log.local("mac_valid", 1);
  log.global("emm_state", "EMM_REGISTERED");
  std::vector<LogRecord> parsed = parse_log(log.text());
  EXPECT_EQ(parsed, log.records());
}

TEST(TraceLog, ParserToleratesInterleavedOutput) {
  std::string text =
      "random build output\n"
      "[ENTER] recv_attach_accept\n"
      "WARNING: unrelated\n"
      "  [GLOBAL] emm_state = EMM_REGISTERED  \n"
      "[LOCAL] broken-line-without-equals\n"
      "[LOCAL] x = 1\n";
  auto records = parse_log(text);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, LogRecord::Kind::kEnter);
  EXPECT_EQ(records[1].value, "EMM_REGISTERED");
  EXPECT_EQ(records[2].name, "x");
}

TEST(TraceLog, ParseStatsAccountForEveryLine) {
  std::string text =
      "random build output\n"
      "[ENTER] recv_attach_accept\n"
      "WARNING: unrelated\n"
      "[GLOBAL] emm_state = EMM_REGISTERED\n"
      "[LOCAL] broken-line-without-equals\n"
      "[LOCAL] x = 1\n";
  ParseStats stats;
  auto records = parse_log(text, &stats);
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.skipped, 2u);    // the two untagged lines
  EXPECT_EQ(stats.truncated, 1u);  // the [LOCAL] with no '='
}

TEST(TraceLog, TruncatedMidLineRecordsAreShedNotCorrupted) {
  // A log cut mid-write (crash, chaos run) can end inside any record kind;
  // the parser must shed exactly the damaged tail and keep the prefix.
  std::string text =
      "[ENTER] recv_attach_request\n"
      "[GLOBAL] emm_state = EMM_DEREGISTERED\n"
      "[ENTER]\n"          // truncated: no function name survives
      "[GLOBAL] emm_sta";  // truncated: cut before '='
  ParseStats stats;
  auto records = parse_log(text, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "recv_attach_request");
  EXPECT_EQ(records[1].value, "EMM_DEREGISTERED");
  EXPECT_EQ(stats.truncated, 2u);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(TraceLog, GarbageSuffixedLogKeepsCleanPrefix) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "EMM_REGISTERED");
  std::string text = log.text() + "\x01\x02garbage tail with no tag\n[LOCAL] cut";
  ParseStats stats;
  auto records = parse_log(text, &stats);
  EXPECT_EQ(records, log.records());
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(stats.truncated, 1u);
}

TEST(TraceLog, ParseStatsRoundTripIsLossless) {
  TraceLogger log;
  log.test_case("TC_NAS_ATT_01");
  log.enter("recv_attach_request");
  log.global("emm_state", "EMM_DEREGISTERED");
  log.local("mac_valid", 1);
  ParseStats stats;
  auto parsed = parse_log(log.text(), &stats);
  EXPECT_EQ(parsed, log.records());
  EXPECT_EQ(stats.records, log.records().size());
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(stats.lines, log.records().size());
}

TEST(TraceLog, ValueWithEqualsSign) {
  auto records = parse_log("[LOCAL] expr = a=b\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "expr");
  EXPECT_EQ(records[0].value, "a=b");
}

TEST(TraceLog, DisabledLoggerEmitsNothing) {
  TraceLogger log;
  log.set_enabled(false);
  log.enter("fn");
  log.global("g", 1);
  EXPECT_TRUE(log.records().empty());
  log.set_enabled(true);
  log.enter("fn");
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(TraceLog, ClearResets) {
  TraceLogger log;
  log.enter("fn");
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_TRUE(log.text().empty());
}

TEST(TraceLog, NumericOverloads) {
  TraceLogger log;
  log.global("count", std::uint64_t{42});
  log.local("flag", std::uint64_t{1});
  EXPECT_EQ(log.records()[0].value, "42");
  EXPECT_EQ(log.records()[1].value, "1");
}

// --- harvest_globals --------------------------------------------------------

TEST(HarvestGlobals, SimpleDeclarations) {
  auto globals = harvest_globals(R"(
    int emm_state;
    extern unsigned long dl_count;
    char* guti = nullptr;
  )");
  EXPECT_EQ(globals, (std::vector<std::string>{"emm_state", "dl_count", "guti"}));
}

TEST(HarvestGlobals, IgnoresFunctionsAndTypes) {
  auto globals = harvest_globals(R"(
    typedef int state_t;
    struct ctx { int inner_field; };
    void handler(int arg);
    int real_global;
    using alias = int;
  )");
  EXPECT_EQ(globals, (std::vector<std::string>{"real_global"}));
}

TEST(HarvestGlobals, IgnoresCommentsAndPreprocessor) {
  auto globals = harvest_globals(R"(
    // int commented_out;
    /* int also_commented; */
    #define MACRO_THING 1
    int kept;
  )");
  EXPECT_EQ(globals, (std::vector<std::string>{"kept"}));
}

TEST(HarvestGlobals, Empty) { EXPECT_TRUE(harvest_globals("").empty()); }

// --- instrument_source ------------------------------------------------------

// The paper's Fig. 3 running example, pre-instrumentation.
constexpr const char* kFig3Source = R"(
void air_msg_handler(msg_t* msg) {
  int msg_type = parse_type(msg);
  if (msg_type == ATTACH_ACCEPT) {
    recv_attach_accept(msg);
  }
}

void recv_attach_accept(msg_t* msg) {
  int mac_valid = check_mac(msg);
  if (!mac_valid) {
    return;
  }
  emm_state = UE_REGISTERED;
  send_attach_complete();
}
)";

TEST(Instrumentor, FindsBothFunctions) {
  auto out = instrument_source(kFig3Source, {"emm_state"});
  EXPECT_EQ(out.stats.functions_instrumented, 2);
  EXPECT_EQ(out.stats.enter_probes, 2);
}

TEST(Instrumentor, InsertsEnterProbesWithFunctionNames) {
  auto out = instrument_source(kFig3Source, {"emm_state"});
  EXPECT_TRUE(contains(out.text, "log_enter(\"air_msg_handler\")"));
  EXPECT_TRUE(contains(out.text, "log_enter(\"recv_attach_accept\")"));
}

TEST(Instrumentor, LogsGlobalsAtEntryAndExit) {
  auto out = instrument_source(kFig3Source, {"emm_state"});
  // 2 functions × (1 entry + exits). recv_attach_accept has an early return
  // plus the fall-through exit; air_msg_handler has one exit.
  EXPECT_TRUE(contains(out.text, "log_global(\"emm_state\", emm_state)"));
  EXPECT_GE(out.stats.global_probes, 5);
}

TEST(Instrumentor, LogsFirstBlockLocalsBeforeExit) {
  auto out = instrument_source(kFig3Source, {"emm_state"});
  EXPECT_TRUE(contains(out.text, "log_local(\"mac_valid\", mac_valid)"));
  EXPECT_TRUE(contains(out.text, "log_local(\"msg_type\", msg_type)"));
  EXPECT_GE(out.stats.local_probes, 2);
}

TEST(Instrumentor, ProbesPrecedeEveryReturn) {
  auto out = instrument_source(kFig3Source, {"emm_state"});
  // The early `return;` in recv_attach_accept must be preceded by the
  // local probe on the same statement position.
  std::size_t ret = out.text.find("return;");
  ASSERT_NE(ret, std::string::npos);
  std::size_t probe = out.text.rfind("log_local(\"mac_valid\"", ret);
  ASSERT_NE(probe, std::string::npos);
  // No other statement between probe and return.
  std::string_view between(out.text.data() + probe, ret - probe);
  EXPECT_FALSE(contains(between, "check_mac"));
}

TEST(Instrumentor, IgnoresCommentsStringsAndKeywords) {
  constexpr const char* source = R"(
    // void not_a_function() {
    const char* s = "void fake() {";
    int helper(int a) {
      if (a) { return 1; }
      return 0;
    }
  )";
  auto out = instrument_source(source, {});
  EXPECT_EQ(out.stats.functions_instrumented, 1);
  EXPECT_TRUE(contains(out.text, "log_enter(\"helper\")"));
  EXPECT_FALSE(contains(out.text, "log_enter(\"fake\")"));
}

TEST(Instrumentor, DoesNotTreatControlFlowAsFunctions) {
  constexpr const char* source = R"(
    int f(int x) {
      while (x > 0) { x--; }
      if (x == 0) { x = 1; }
      for (int i = 0; i < 3; i++) { x += i; }
      switch (x) { default: break; }
      return x;
    }
  )";
  auto out = instrument_source(source, {});
  EXPECT_EQ(out.stats.functions_instrumented, 1);
}

TEST(Instrumentor, LocalsStopAtFirstControlFlow) {
  constexpr const char* source = R"(
    void g() {
      int first = 1;
      int second = compute();
      if (first) { }
      int after_branch = 3;
      send_x();
    }
  )";
  auto out = instrument_source(source, {});
  EXPECT_TRUE(contains(out.text, "log_local(\"first\", first)"));
  EXPECT_TRUE(contains(out.text, "log_local(\"second\", second)"));
  // Declared after the first basic block: not in scope at every exit, so
  // the paper's technique does not log it.
  EXPECT_FALSE(contains(out.text, "log_local(\"after_branch\""));
}

TEST(Instrumentor, InstrumentedFig3ProducesParsableLogStatements) {
  // End-to-end shape check: simulate executing the instrumented handler by
  // converting the inserted probes into log lines, then parse them.
  auto out = instrument_source(kFig3Source, {"emm_state"});
  TraceLogger log;
  // "Execute": walk inserted probes in textual order for recv_attach_accept.
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.local("mac_valid", 1);
  log.enter("send_attach_complete");
  log.global("emm_state", "UE_REGISTERED");
  auto parsed = parse_log(log.text());
  EXPECT_EQ(parsed.size(), 5u);
}

TEST(Instrumentor, EmptySource) {
  auto out = instrument_source("", {"g"});
  EXPECT_EQ(out.stats.functions_instrumented, 0);
  EXPECT_TRUE(out.text.empty());
}

TEST(Instrumentor, MultipleGlobals) {
  auto out = instrument_source("void f() { work(); }", {"a", "b", "c"});
  EXPECT_TRUE(contains(out.text, "log_global(\"a\", a)"));
  EXPECT_TRUE(contains(out.text, "log_global(\"b\", b)"));
  EXPECT_TRUE(contains(out.text, "log_global(\"c\", c)"));
  // entry + one exit, 3 globals each.
  EXPECT_EQ(out.stats.global_probes, 6);
}

}  // namespace
}  // namespace procheck::instrument
