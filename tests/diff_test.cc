// Differential analysis suite (DESIGN.md §16): product-walk divergence
// enumeration, distinguishing-sequence minimality/validity, the pinned
// I1–I6 rediscovery between the seeded profiles, report canonicality across
// runs and jobs levels, the JSON codec round trip, walk-cap degradation,
// and the remote-vs-in-process equivalence over live SUL servers.
//
// Monolithic on purpose: the profile sides (conformance run + extraction)
// are computed once and shared across every test case.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "diff/diff.h"
#include "diff/report_json.h"
#include "diff/sources.h"
#include "diff/triage.h"
#include "net/sul_server.h"
#include "ue/profile.h"

namespace procheck::diff {
namespace {

const Side& profile_side(const std::string& name) {
  static std::map<std::string, Side> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    SideResult r = resolve_side("profile:" + name);
    EXPECT_TRUE(r.ok) << r.error;
    it = cache.emplace(name, std::move(r.side)).first;
  }
  return it->second;
}

/// The triaged cls-vs-srsue report, computed once (it model-checks every
/// candidate property on both sides).
const DiffReport& cls_vs_srsue() {
  static const DiffReport report = [] {
    DiffReport r = diff_machines(profile_side("cls"), profile_side("srsue"));
    triage(r, profile_side("cls"), profile_side("srsue"));
    return r;
  }();
  return report;
}

const DiffReport& cls_vs_oai() {
  static const DiffReport report = [] {
    DiffReport r = diff_machines(profile_side("cls"), profile_side("oai"));
    triage(r, profile_side("cls"), profile_side("oai"));
    return r;
  }();
  return report;
}

const Finding* finding_of(const DiffReport& report, const std::string& property_id) {
  for (const Finding& f : report.findings) {
    if (f.property_id == property_id) return &f;
  }
  return nullptr;
}

/// Drives `machine` along a divergence sequence prefix; nullptr when some
/// input is not enabled.
const fsm::Transition* drive(const fsm::Fsm& machine, const std::vector<std::string>& inputs,
                             std::size_t count) {
  std::string state = machine.initial();
  const fsm::Transition* last = nullptr;
  for (std::size_t i = 0; i < count; ++i) {
    last = nullptr;
    for (const fsm::Transition* t : machine.from(state)) {
      if (input_key(t->conditions) == inputs[i]) {
        last = t;
        break;
      }
    }
    if (last == nullptr) return nullptr;
    state = last->to;
  }
  return last;
}

fsm::Transition make_transition(const std::string& from, const std::string& to,
                                std::set<fsm::Atom> conditions, std::set<fsm::Atom> actions) {
  fsm::Transition t;
  t.from = from;
  t.to = to;
  t.conditions = std::move(conditions);
  t.actions = std::move(actions);
  return t;
}

// --- Core product walk -------------------------------------------------------

TEST(DiffCore, SelfDiffIsEquivalent) {
  const Side& cls = profile_side("cls");
  DiffReport report = diff_machines(cls, cls);
  EXPECT_TRUE(report.equivalent);
  EXPECT_FALSE(report.inconclusive);
  EXPECT_TRUE(report.divergences.empty());
  EXPECT_EQ(report.exit_code(), 0);
  // Triage on an equivalent report is a no-op.
  triage(report, cls, cls);
  EXPECT_TRUE(report.findings.empty());
}

TEST(DiffCore, OutputMismatchIsDetectedAndWalkContinues) {
  Side left{"L", {}};
  Side right{"R", {}};
  for (Side* s : {&left, &right}) {
    s->machine.set_initial("A");
    s->machine.add_transition(make_transition("A", "B", {"m1"}, {"ack"}));
  }
  // Same input, same successor, different output — and a divergence beyond
  // it that only a continued walk can reach.
  left.machine.add_transition(make_transition("B", "C", {"m2"}, {"yes"}));
  right.machine.add_transition(make_transition("B", "C", {"m2"}, {"no"}));
  left.machine.add_transition(make_transition("C", "C", {"m3"}, {"tail"}));

  DiffReport report = diff_machines(left, right);
  ASSERT_EQ(report.divergences.size(), 2u);
  EXPECT_EQ(report.divergences[0].kind, DivergenceKind::kOutputMismatch);
  EXPECT_EQ(report.divergences[0].input, "m2");
  EXPECT_EQ(report.divergences[0].sequence, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(report.divergences[1].kind, DivergenceKind::kMissingRight);
  EXPECT_EQ(report.divergences[1].input, "m3");
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(DiffCore, ExtraStatesReachableOnlyPastDivergence) {
  Side left{"L", {}};
  Side right{"R", {}};
  for (Side* s : {&left, &right}) {
    s->machine.set_initial("A");
    s->machine.add_transition(make_transition("A", "B", {"m1"}, {"ack"}));
  }
  // Right grows a tail B -> C -> D the lockstep walk can never enter: the
  // missing-left divergence fires at (B|B) and C, D stay uncovered.
  right.machine.add_transition(make_transition("B", "C", {"m2"}, {"go"}));
  right.machine.add_transition(make_transition("C", "D", {"m3"}, {"go"}));

  DiffReport report = diff_machines(left, right);
  std::vector<DivergenceKind> kinds;
  for (const Divergence& d : report.divergences) kinds.push_back(d.kind);
  EXPECT_EQ(kinds, (std::vector<DivergenceKind>{DivergenceKind::kMissingLeft,
                                                DivergenceKind::kExtraStateRight,
                                                DivergenceKind::kExtraStateRight}));
  // The extra-state sequence is the shortest path in the owning machine.
  EXPECT_EQ(report.divergences[1].input, "C");
  EXPECT_EQ(report.divergences[1].sequence, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(report.divergences[2].input, "D");
  EXPECT_EQ(report.divergences[2].sequence, (std::vector<std::string>{"m1", "m2", "m3"}));
}

TEST(DiffCore, NondeterministicSideIsInconclusive) {
  Side left{"L", {}};
  left.machine.set_initial("A");
  left.machine.add_transition(make_transition("A", "B", {"m1"}, {"ack"}));
  left.machine.add_transition(make_transition("A", "C", {"m1"}, {"ack"}));
  ASSERT_FALSE(left.machine.deterministic());

  DiffReport report = diff_machines(left, left);
  EXPECT_TRUE(report.inconclusive);
  EXPECT_FALSE(report.equivalent);
  EXPECT_NE(report.note.find("nondeterministic"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(DiffCore, WalkCapDegradesToStructuredInconclusive) {
  DiffOptions options;
  options.max_product_pairs = 1;
  DiffReport report =
      diff_machines(profile_side("cls"), profile_side("srsue"), options);
  // One pair cannot prove anything about machines this size: the report
  // must refuse, not claim equivalence.
  EXPECT_TRUE(report.inconclusive);
  EXPECT_NE(report.note.find("capped"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(DiffCore, DistinguishingSequencesReplayOnTheRealMachines) {
  const DiffReport& report = cls_vs_srsue();
  const fsm::Fsm& lm = profile_side("cls").machine;
  const fsm::Fsm& rm = profile_side("srsue").machine;
  ASSERT_FALSE(report.divergences.empty());
  for (const Divergence& d : report.divergences) {
    if (d.kind == DivergenceKind::kExtraStateLeft ||
        d.kind == DivergenceKind::kExtraStateRight) {
      continue;  // sequences live in the owning machine only
    }
    ASSERT_FALSE(d.sequence.empty());
    EXPECT_EQ(d.sequence.back(), d.input);
    // The common prefix must drive BOTH machines; the final input must be
    // enabled exactly as the divergence kind claims.
    const std::size_t prefix = d.sequence.size() - 1;
    if (prefix > 0) {
      EXPECT_NE(drive(lm, d.sequence, prefix), nullptr) << d.input;
      EXPECT_NE(drive(rm, d.sequence, prefix), nullptr) << d.input;
    }
    const fsm::Transition* lt = drive(lm, d.sequence, d.sequence.size());
    const fsm::Transition* rt = drive(rm, d.sequence, d.sequence.size());
    switch (d.kind) {
      case DivergenceKind::kOutputMismatch:
        ASSERT_NE(lt, nullptr);
        ASSERT_NE(rt, nullptr);
        EXPECT_NE(lt->actions, rt->actions);
        break;
      case DivergenceKind::kMissingLeft:
        EXPECT_EQ(lt, nullptr);
        ASSERT_NE(rt, nullptr);
        EXPECT_EQ(rt->label(), d.right_edge);
        break;
      case DivergenceKind::kMissingRight:
        ASSERT_NE(lt, nullptr);
        EXPECT_EQ(rt, nullptr);
        EXPECT_EQ(lt->label(), d.left_edge);
        break;
      default:
        break;
    }
  }
}

// --- The pinned cross-implementation story (Table I / §VII) ------------------

TEST(DiffTriage, ClsVsSrsueRediscoversSeededDeviations) {
  const DiffReport& report = cls_vs_srsue();
  EXPECT_FALSE(report.equivalent);
  EXPECT_EQ(report.exit_code(), 1);

  // srsue's seeded deviations, as pairwise divergences against the
  // reference stack: I1 (replayed attach_accept), I3 (counter-reset
  // authentication), I4 (out-of-state attach_accept handling).
  for (const auto& [property, attack] :
       std::map<std::string, std::string>{{"S05", "I1"}, {"S07", "I3"}, {"S08", "I4"}}) {
    const Finding* f = finding_of(report, property);
    ASSERT_NE(f, nullptr) << property;
    EXPECT_EQ(f->attack_id, attack);
    EXPECT_EQ(f->cls, Finding::Class::kDivergent) << property;
    EXPECT_EQ(f->violates, "right") << property;
    EXPECT_EQ(f->left_status, "verified");
    EXPECT_EQ(f->right_status, "attack");
  }
  // I6 (SMC replay) is seeded in EVERY profile, so it never pairwise
  // diverges — the shared-deviation triage tier must still surface it.
  const Finding* i6 = finding_of(report, "P03");
  ASSERT_NE(i6, nullptr);
  EXPECT_EQ(i6->attack_id, "I6");
  EXPECT_EQ(i6->cls, Finding::Class::kCommon);
  EXPECT_EQ(i6->violates, "both");

  // Every divergence the triage retained carries its property ids; at least
  // one divergence must be attributed to each divergent finding.
  for (const Finding& f : report.findings) {
    if (f.cls != Finding::Class::kDivergent) continue;
    bool attributed = false;
    for (const Divergence& d : report.divergences) {
      attributed = attributed ||
                   std::count(d.properties.begin(), d.properties.end(), f.property_id) > 0;
    }
    EXPECT_TRUE(attributed) << f.property_id;
  }
}

TEST(DiffTriage, ClsVsOaiRediscoversSeededDeviations) {
  const DiffReport& report = cls_vs_oai();
  EXPECT_EQ(report.exit_code(), 1);
  for (const auto& [property, attack] :
       std::map<std::string, std::string>{
           {"S05", "I1"}, {"S06", "I2"}, {"P24", "I2"}, {"P02", "I5"}}) {
    const Finding* f = finding_of(report, property);
    ASSERT_NE(f, nullptr) << property;
    EXPECT_EQ(f->attack_id, attack);
    EXPECT_EQ(f->cls, Finding::Class::kDivergent) << property;
    EXPECT_EQ(f->violates, "right") << property;
  }
  const Finding* i6 = finding_of(report, "P03");
  ASSERT_NE(i6, nullptr);
  EXPECT_EQ(i6->cls, Finding::Class::kCommon);
}

TEST(DiffTriage, UnionOfPairwiseDiffsCoversAllSixImplementationAttacks) {
  std::set<std::string> attacks;
  for (const DiffReport* report : {&cls_vs_srsue(), &cls_vs_oai()}) {
    for (const Finding& f : report->findings) {
      if (!f.attack_id.empty() && f.attack_id[0] == 'I') attacks.insert(f.attack_id);
    }
  }
  EXPECT_EQ(attacks,
            (std::set<std::string>{"I1", "I2", "I3", "I4", "I5", "I6"}));
}

// --- Canonicality ------------------------------------------------------------

TEST(DiffCanonical, ReportIsByteIdenticalAcrossRunsAndJobs) {
  const Side& left = profile_side("cls");
  const Side& right = profile_side("srsue");
  DiffReport base = diff_machines(left, right);

  TriageOptions sequential;
  sequential.jobs = 1;
  DiffReport a = base;
  triage(a, left, right, sequential);

  TriageOptions parallel;
  parallel.jobs = 4;
  DiffReport b = base;
  triage(b, left, right, parallel);

  EXPECT_EQ(a, b);
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(encode_report(a), encode_report(b));
  EXPECT_EQ(a.to_dot(), b.to_dot());
  // And against the shared fixture (a third, independent run).
  EXPECT_EQ(encode_report(a), encode_report(cls_vs_srsue()));
}

// --- JSON codec --------------------------------------------------------------

TEST(DiffJson, RoundTripsTheTriagedReport) {
  const DiffReport& report = cls_vs_srsue();
  const std::string encoded = encode_report(report);
  std::optional<DiffReport> decoded = decode_report(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, report);
  EXPECT_EQ(encode_report(*decoded), encoded);
}

TEST(DiffJson, DecoderIsStrict) {
  EXPECT_FALSE(decode_report("").has_value());
  EXPECT_FALSE(decode_report("{}").has_value());
  EXPECT_FALSE(decode_report("[1,2]").has_value());
  EXPECT_FALSE(decode_report("{\"diff\":99}").has_value());
  // Unknown divergence kind: whole document refused, never a partial report.
  EXPECT_FALSE(
      decode_report("{\"diff\":1,\"left\":\"l\",\"right\":\"r\",\"equivalent\":true,"
                    "\"inconclusive\":false,\"note\":\"\",\"pairs\":0,\"edges\":[],"
                    "\"divergences\":[{\"kind\":\"sideways\",\"input\":\"\","
                    "\"sequence\":[],\"left_state\":\"\",\"right_state\":\"\","
                    "\"left_edge\":\"\",\"right_edge\":\"\",\"properties\":[]}],"
                    "\"findings\":[]}")
          .has_value());
  // Trailing garbage after the document.
  const std::string ok = encode_report(DiffReport{});
  EXPECT_TRUE(decode_report(ok).has_value());
  EXPECT_FALSE(decode_report(ok + "x").has_value());
}

// --- Side resolution ---------------------------------------------------------

TEST(DiffSources, RejectsMalformedSpecs) {
  for (const char* spec : {"", "cls", "profile:", "profile:unknown", "carrier:pigeon",
                           "remote:noport", "log:/nonexistent/path.log"}) {
    SideResult r = resolve_side(spec);
    EXPECT_FALSE(r.ok) << spec;
    EXPECT_FALSE(r.inconclusive) << spec;
    EXPECT_FALSE(r.error.empty()) << spec;
  }
}

TEST(DiffSources, UnreachableRemoteDegradesToInconclusive) {
  // Nothing listens here: the transport must degrade to a structured
  // inconclusive side (exit 3 at the CLI), not hang or crash.
  SideResult r = resolve_side("remote:127.0.0.1:1");
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.inconclusive);
  EXPECT_FALSE(r.error.empty());
}

// --- Remote two-SUL flow -----------------------------------------------------

TEST(DiffRemote, RemoteDiffMatchesInProcessDiff) {
  net::SulServer left_server(ue::StackProfile::cls());
  net::SulServer right_server(ue::StackProfile::srsue());
  ASSERT_TRUE(left_server.start());
  ASSERT_TRUE(right_server.start());

  SideResult rl = resolve_side("remote:127.0.0.1:" + std::to_string(left_server.port()));
  SideResult rr = resolve_side("remote:127.0.0.1:" + std::to_string(right_server.port()));
  ASSERT_TRUE(rl.ok) << rl.error;
  ASSERT_TRUE(rr.ok) << rr.error;

  SideResult ll = resolve_side("learn:cls");
  SideResult lr = resolve_side("learn:srsue");
  ASSERT_TRUE(ll.ok) << ll.error;
  ASSERT_TRUE(lr.ok) << lr.error;

  // Same machines, endpoint-independent.
  EXPECT_EQ(rl.side.machine, ll.side.machine);
  EXPECT_EQ(rr.side.machine, lr.side.machine);

  // Side names differ by construction (host:port vs profile name); after
  // normalizing them, the full reports must be byte-identical.
  for (SideResult* s : {&rl, &ll}) s->side.name = "left";
  for (SideResult* s : {&rr, &lr}) s->side.name = "right";
  DiffReport remote = diff_machines(rl.side, rr.side);
  triage(remote, rl.side, rr.side);
  DiffReport local = diff_machines(ll.side, lr.side);
  triage(local, ll.side, lr.side);
  EXPECT_EQ(remote, local);
  EXPECT_EQ(remote.render(), local.render());
  EXPECT_EQ(encode_report(remote), encode_report(local));
}

// --- Parallel triage under TSan ----------------------------------------------

// `ctest -L tsan` (the tsan preset) runs this family alone: the per-property
// fan-out across both sides with jobs > 1 must be race-free and reproduce
// the sequential report exactly. Small handcrafted machines keep the model-
// checking cost TSan-friendly.
TEST(DiffTsan, ParallelTriageMatchesSequential) {
  Side left{"left", {}};
  Side right{"right", {}};
  for (Side* s : {&left, &right}) {
    s->machine.set_initial("EMM_DEREGISTERED");
    s->machine.add_transition(make_transition(
        "EMM_DEREGISTERED", "EMM_REGISTERED_INITIATED", {"power_on_trigger"}, {"attach_request"}));
  }
  // One diverging predicate edge: enough to put candidates in front of the
  // supervised model checker on both sides.
  right.machine.add_transition(make_transition(
      "EMM_REGISTERED_INITIATED", "EMM_REGISTERED_NORMAL_SERVICE",
      {"attach_accept", "replay_accepted=1", "sec_hdr=integrity_protected_ciphered"},
      {"attach_complete"}));

  DiffReport base = diff_machines(left, right);
  ASSERT_FALSE(base.divergences.empty());

  TriageOptions sequential;
  sequential.jobs = 1;
  DiffReport a = base;
  triage(a, left, right, sequential);

  TriageOptions parallel;
  parallel.jobs = 4;
  DiffReport b = base;
  triage(b, left, right, parallel);

  EXPECT_EQ(a, b);
  EXPECT_EQ(encode_report(a), encode_report(b));
}

}  // namespace
}  // namespace procheck::diff
