// Chaos conformance: the fault-injection channel model end to end.
//
// Three contracts are pinned here: (1) a zero-intensity channel is
// byte-identical to no channel at all (so chaos instrumentation can stay
// compiled-in); (2) under every fault regime the pipeline completes without
// crashing and every degradation is explicitly diagnosed; (3) the UE/MME
// retransmission machinery actually recovers an attach under realistic loss
// and gives up explicitly (never livelocks) under total loss.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "extractor/extractor.h"
#include "instrument/trace_log.h"
#include "testing/chaos.h"
#include "testing/channel_model.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"
#include "ue/profile.h"

namespace procheck {
namespace {

fsm::Fsm extract_ue_model(const instrument::TraceLogger& trace,
                          const ue::StackProfile& profile) {
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  return extractor::extract(trace.records(), extractor::ue_signatures(profile), opts);
}

// --- Contract 1: the all-zero channel is inert. -------------------------

TEST(ChaosChannel, ZeroIntensityChannelIsByteIdentical) {
  const ue::StackProfile profile = ue::StackProfile::cls();

  instrument::TraceLogger base_trace;
  testing::ConformanceReport base = testing::run_conformance(profile, base_trace);

  testing::ChannelConfig zero;  // every probability 0.0
  instrument::TraceLogger chan_trace;
  testing::ConformanceReport with_channel =
      testing::run_conformance(profile, chan_trace, &zero);

  // Same verdicts, same log bytes, same extracted machine.
  ASSERT_EQ(base.results.size(), with_channel.results.size());
  for (std::size_t i = 0; i < base.results.size(); ++i) {
    EXPECT_EQ(base.results[i].passed, with_channel.results[i].passed) << base.results[i].id;
    EXPECT_TRUE(with_channel.results[i].quiesced) << base.results[i].id;
  }
  EXPECT_EQ(base_trace.records(), chan_trace.records());
  EXPECT_EQ(base_trace.text(), chan_trace.text());
  EXPECT_TRUE(extract_ue_model(base_trace, profile) == extract_ue_model(chan_trace, profile));
  EXPECT_EQ(with_channel.channel.total_faults(), 0u);
  // The channel still *saw* every PDU — it just never touched one.
  EXPECT_GT(with_channel.channel.downlink.offered + with_channel.channel.uplink.offered, 0u);
}

TEST(ChaosChannel, SameSeedSameRun) {
  const ue::StackProfile profile = ue::StackProfile::cls();
  testing::ChannelConfig cfg;
  cfg.downlink.drop = 0.1;
  cfg.uplink.duplicate = 0.1;
  cfg.seed = 0xDECAFBAD;

  instrument::TraceLogger t1, t2;
  testing::ConformanceReport r1 = testing::run_conformance(profile, t1, &cfg);
  testing::ConformanceReport r2 = testing::run_conformance(profile, t2, &cfg);

  EXPECT_EQ(t1.records(), t2.records());
  ASSERT_EQ(r1.results.size(), r2.results.size());
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].passed, r2.results[i].passed) << r1.results[i].id;
  }
  EXPECT_EQ(r1.channel.total_faults(), r2.channel.total_faults());
}

// --- ChannelModel unit behavior. ----------------------------------------

TEST(ChaosChannel, InactiveProfileConsumesNoRandomness) {
  testing::ChannelModel ch;  // default config: all zero
  nas::NasPdu pdu;
  pdu.payload = {1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ch.transfer(true, pdu), testing::ChannelFault::kNone);
    EXPECT_EQ(ch.transfer(false, pdu), testing::ChannelFault::kNone);
  }
  EXPECT_EQ(ch.stats().downlink.offered, 50u);
  EXPECT_EQ(ch.stats().uplink.offered, 50u);
  EXPECT_EQ(ch.stats().total_faults(), 0u);
  EXPECT_EQ(pdu.payload, (Bytes{1, 2, 3}));  // never touched
}

TEST(ChaosChannel, CertainDropAlwaysDrops) {
  testing::ChannelConfig cfg;
  cfg.downlink.drop = 1.0;
  testing::ChannelModel ch(cfg);
  nas::NasPdu pdu;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ch.transfer(true, pdu), testing::ChannelFault::kDrop);
    EXPECT_EQ(ch.transfer(false, pdu), testing::ChannelFault::kNone);  // uplink inert
  }
  EXPECT_EQ(ch.stats().downlink.dropped, 20u);
  EXPECT_EQ(ch.stats().uplink.faults(), 0u);
}

TEST(ChaosChannel, CorruptFlipsExactlyOneBit) {
  testing::ChannelConfig cfg;
  cfg.uplink.corrupt = 1.0;
  testing::ChannelModel ch(cfg);
  for (int i = 0; i < 20; ++i) {
    nas::NasPdu pdu;
    pdu.payload = {0x00, 0x00, 0x00, 0x00};
    pdu.mac = 0;
    ASSERT_EQ(ch.transfer(false, pdu), testing::ChannelFault::kCorrupt);
    int flipped = 0;
    for (std::uint8_t b : pdu.payload) flipped += __builtin_popcount(b);
    flipped += __builtin_popcountll(pdu.mac);
    EXPECT_EQ(flipped, 1);
  }
}

// --- Contract 2: every regime completes and is explained. ---------------

TEST(ChaosMatrix, EveryRegimeCompletesAndIsExplained) {
  const ue::StackProfile profile = ue::StackProfile::cls();
  std::vector<testing::ChaosReport> reports = testing::run_chaos_matrix(profile, 0.1);
  ASSERT_GE(reports.size(), 6u);  // 5 single-fault regimes + combined
  for (const testing::ChaosReport& rep : reports) {
    SCOPED_TRACE(rep.regime);
    // The suite must complete under faults: same case count as fault-free.
    EXPECT_EQ(rep.chaos.total(), rep.baseline.total());
    // Either the extracted model is identical to the fault-free one, or the
    // degradation is diagnosed — never silent mutation.
    EXPECT_TRUE(rep.explained());
    if (!rep.fsm_identical || !rep.newly_failing.empty() || !rep.non_quiescent.empty()) {
      EXPECT_FALSE(rep.diagnostics.empty());
    }
  }
}

TEST(ChaosMatrix, RegimesActuallyInjectFaults) {
  const ue::StackProfile profile = ue::StackProfile::cls();
  std::vector<testing::ChaosReport> reports = testing::run_chaos_matrix(profile, 0.2);
  std::size_t total = 0;
  for (const testing::ChaosReport& rep : reports) total += rep.channel.total_faults();
  EXPECT_GT(total, 0u);
}

// --- Contract 3: retransmission recovers realistic loss. ----------------

class LossyAttachSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyAttachSweep, AttachSucceedsUnderTenPercentLoss) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::ChannelConfig cfg;
  cfg.downlink.drop = 0.1;
  cfg.uplink.drop = 0.1;
  cfg.seed = GetParam();
  tb.set_channel(cfg);

  EXPECT_TRUE(testing::complete_attach(tb, conn));
  EXPECT_TRUE(tb.ue(conn).security().valid);
  EXPECT_EQ(tb.ue(conn).procedures_abandoned(), 0);
  EXPECT_EQ(tb.step_limit_hits(), 0u);
}

TEST_P(LossyAttachSweep, AttachSucceedsUnderDuplicationAndReordering) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::ChannelConfig cfg;
  cfg.downlink.duplicate = 0.15;
  cfg.uplink.reorder = 0.15;
  cfg.seed = GetParam() ^ 0xD0B2;
  tb.set_channel(cfg);

  EXPECT_TRUE(testing::complete_attach(tb, conn));
  EXPECT_TRUE(tb.ue(conn).security().valid);
  EXPECT_EQ(tb.step_limit_hits(), 0u);
}

TEST_P(LossyAttachSweep, ChaoticAttachNeverCorruptsUsim) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::ChannelConfig cfg;
  cfg.downlink.corrupt = 0.2;
  cfg.uplink.drop = 0.1;
  cfg.seed = GetParam() ^ 0xC0A5;
  tb.set_channel(cfg);

  testing::complete_attach(tb, conn);  // may or may not succeed at this rate
  // A corrupted challenge must never advance the USIM's SQN array past what
  // one legitimate AKA round (per retransmitted challenge) can justify.
  EXPECT_LE(tb.ue(conn).usim().highest_accepted_seq(), 16u);
  EXPECT_EQ(tb.ue(conn).replays_accepted(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyAttachSweep,
                         ::testing::Values(11u, 23u, 37u, 58u, 71u));

TEST(ChaosMatrix, CrashingRegimeIsContainedAndDiagnosed) {
  // The supervisor discipline applied to the chaos matrix: a worker that
  // throws yields a crashed-but-diagnosed report instead of aborting the
  // matrix (or terminating the pool thread running it).
  std::vector<testing::ChaosRegime> regimes = testing::chaos_regimes(0.1);
  ASSERT_GE(regimes.size(), 2u);
  testing::ChaosReport crashed = testing::run_regime_supervised(
      ue::StackProfile::cls(), regimes[0],
      [](const std::string&) { throw std::runtime_error("injected regime crash"); });
  EXPECT_TRUE(crashed.crashed);
  EXPECT_EQ(crashed.failure, "injected regime crash");
  EXPECT_TRUE(crashed.degraded());
  EXPECT_TRUE(crashed.explained());  // the crash itself is the diagnostic
  ASSERT_FALSE(crashed.diagnostics.empty());

  // Without a fault the supervised wrapper is transparent.
  testing::ChaosReport clean =
      testing::run_regime_supervised(ue::StackProfile::cls(), regimes[0]);
  EXPECT_FALSE(clean.crashed);
  EXPECT_EQ(clean.regime, regimes[0].name);
  EXPECT_TRUE(clean.explained());
}

TEST(ChaosRetransmission, TotalLossAbandonsExplicitly) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::ChannelConfig cfg;
  cfg.uplink.drop = 1.0;
  cfg.downlink.drop = 1.0;
  tb.set_channel(cfg);

  EXPECT_FALSE(testing::complete_attach(tb, conn));
  // The UE retried its full budget, then gave up and fell back to
  // deregistered — no livelock, no half-open procedure.
  EXPECT_EQ(tb.ue(conn).retransmissions_sent(), ue::UeNas::kMaxRetransmissions);
  EXPECT_EQ(tb.ue(conn).procedures_abandoned(), 1);
  EXPECT_FALSE(tb.ue(conn).retransmission_armed());
  EXPECT_EQ(tb.ue(conn).state(), ue::EmmState::kDeregistered);
}

TEST(ChaosRetransmission, FaultFreeAttachSendsNoRetransmissions) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  EXPECT_EQ(tb.ue(conn).retransmissions_sent(), 0);
  EXPECT_EQ(tb.ue(conn).procedures_abandoned(), 0);
  // Completion disarms the timer: ticking a registered UE emits nothing.
  EXPECT_FALSE(tb.ue(conn).retransmission_armed());
  std::size_t dl_before = tb.downlink_captures().size();
  std::size_t ul_before = tb.uplink_captures().size();
  tb.tick(12);
  EXPECT_EQ(tb.downlink_captures().size(), dl_before);
  EXPECT_EQ(tb.uplink_captures().size(), ul_before);
}

TEST(ChaosRetransmission, DelayedChallengeStillCompletesAttach) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::ChannelConfig cfg;
  cfg.downlink.delay = 0.5;
  cfg.max_delay_steps = 3;
  cfg.seed = 97;
  tb.set_channel(cfg);

  EXPECT_TRUE(testing::complete_attach(tb, conn));
  EXPECT_EQ(tb.step_limit_hits(), 0u);
}

}  // namespace
}  // namespace procheck
