// Learning-supervisor suite (DESIGN.md §15): crash-safe journal + resume
// determinism, the kill-at-every-journal-byte sweep, exception injection at
// every query probe, watchdog budgets and the retry/degrade ladder, k-of-n
// nondeterminism arbitration (convergence where first-observation-wins pins
// a wrong edge, quarantine where no majority exists), and the remote
// variants over the multi-session server — clean and under lossless chaos.
//
// Monolithic binary (one ctest entry, label "learner-chaos", folded into the
// chaos-asan preset): the reference learn + journal are computed once and
// shared. Sweeps run at a stride on the PR gate; PROCHECK_SWEEP_EVERY_BYTE=1
// (or PROCHECK_NIGHTLY=1) covers every byte / every probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/journal.h"
#include "common/thread_pool.h"
#include "learner/learn_supervisor.h"
#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_sul.h"
#include "net/sul_server.h"
#include "ue/profile.h"

namespace procheck::learner {
namespace {

using Word = std::vector<std::string>;

bool exhaustive_sweeps() {
  for (const char* var : {"PROCHECK_SWEEP_EVERY_BYTE", "PROCHECK_NIGHTLY"}) {
    const char* v = std::getenv(var);
    if (v != nullptr && std::string(v) == "1") return true;
  }
  return false;
}

LearnOptions tiny_options() {
  LearnOptions o;
  o.eq_test_words = 15;
  o.eq_test_max_length = 4;
  o.seed = 0xBEEF;
  return o;
}

std::string fsm_text(const LearnResult& r) { return r.machine.to_fsm().to_dot("learned"); }

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  std::remove((path + ".tmp").c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Writes a journal with proper CRC tags from raw payload lines.
void craft_journal(const std::string& path, const std::vector<std::string>& payloads) {
  remove_journal(path);
  JournalWriter writer(path);
  for (const std::string& p : payloads) writer.append(p);
  ASSERT_TRUE(writer.commit());
}

/// The shared clean reference: one plain learn, one journaled supervised
/// learn (same options), plus the journal bytes and the fresh-query probe
/// count for the injection sweeps.
struct Reference {
  LearnResult plain;
  SupervisedLearn supervised;
  std::string fsm;
  std::string journal_bytes;
  long probes = 0;
};

const Reference& reference() {
  static const Reference ref = [] {
    Reference r;
    {
      UeSul sul(ue::StackProfile::cls());
      r.plain = learn_mealy(sul, tiny_options());
    }
    r.fsm = fsm_text(r.plain);
    const std::string path = temp_path("learn_ref.journal");
    remove_journal(path);
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = path;
    o.run_tag = "cls";
    long probes = 0;
    o.fault_hook = [&probes](long p) { probes = p + 1; };
    UeSul sul(ue::StackProfile::cls());
    r.supervised = learn_supervised(sul, o);
    r.journal_bytes = slurp(path);
    r.probes = probes;
    return r;
  }();
  return ref;
}

void expect_matches_reference(const SupervisedLearn& run, const char* where) {
  const Reference& ref = reference();
  EXPECT_FALSE(run.aborted) << where << ": " << run.abort_reason;
  ASSERT_TRUE(run.result.converged) << where << ": " << run.result.note;
  EXPECT_EQ(fsm_text(run.result), ref.fsm) << where;
  EXPECT_EQ(run.result.membership_queries, ref.plain.membership_queries) << where;
  EXPECT_EQ(run.result.equivalence_queries, ref.plain.equivalence_queries) << where;
  EXPECT_EQ(run.result.counterexamples, ref.plain.counterexamples) << where;
}

// ---------------------------------------------------------------------------
// Journal codec

TEST(LearnJournalCodec, HeaderRoundTrip) {
  const std::string line = encode_learn_header("cls", "0123456789abcdef");
  const auto h = decode_learn_header(line);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->tag, "cls");
  EXPECT_EQ(h->opts, "0123456789abcdef");
}

TEST(LearnJournalCodec, HeaderRejectsDamage) {
  EXPECT_FALSE(decode_learn_header(""));
  EXPECT_FALSE(decode_learn_header("learn-header"));
  EXPECT_FALSE(decode_learn_header("learn-header v=2 tag=cls opts=0123456789abcdef"));
  EXPECT_FALSE(decode_learn_header("learn-header v=1 tag= opts=0123456789abcdef"));
  EXPECT_FALSE(decode_learn_header("learn-header v=1 tag=cls opts=0123456789abcde"));
  EXPECT_FALSE(decode_learn_header("learn-header v=1 tag=cls opts=0123456789ABCDEF"));
  EXPECT_FALSE(decode_learn_header("learn-header v=1 tag=cls opts=0123456789abcdef "));
  EXPECT_FALSE(decode_learn_header("learn-header  v=1 tag=cls opts=0123456789abcdef"));
  EXPECT_FALSE(decode_learn_header("obs 1 power_on attach_request"));
}

TEST(LearnJournalCodec, ObservationRoundTrip) {
  const Word word = {"power_on", "paging"};
  const Word outs = {"attach_request", "service_request"};
  const auto obs = decode_observation(encode_observation(word, outs));
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->word, word);
  EXPECT_EQ(obs->outputs, outs);
}

TEST(LearnJournalCodec, ObservationRejectsDamage) {
  EXPECT_FALSE(decode_observation(""));
  EXPECT_FALSE(decode_observation("obs"));
  EXPECT_FALSE(decode_observation("obs 0"));
  EXPECT_FALSE(decode_observation("obs 1 power_on"));                      // missing output
  EXPECT_FALSE(decode_observation("obs 2 power_on paging attach_request"));  // count lies
  EXPECT_FALSE(decode_observation("obs 1 not_a_symbol attach_request"));
  EXPECT_FALSE(decode_observation("obs 1 power_on sul_unavailable"));  // poison never adopted
  EXPECT_FALSE(decode_observation("obs x power_on attach_request"));
  EXPECT_FALSE(decode_observation("obs 1  power_on attach_request"));  // empty token
  EXPECT_FALSE(decode_observation("obs 99999 power_on attach_request"));
  EXPECT_FALSE(decode_observation("learn-header v=1 tag=cls opts=0123456789abcdef"));
}

TEST(LearnJournalCodec, OptionsHashDependsOnEveryKnob) {
  const LearnOptions base = tiny_options();
  const std::string h = learn_options_hash(base, 3, 5);
  EXPECT_EQ(h.size(), 16u);
  LearnOptions seed = base;
  seed.seed = 42;
  EXPECT_NE(learn_options_hash(seed, 3, 5), h);
  LearnOptions words = base;
  words.eq_test_words = 16;
  EXPECT_NE(learn_options_hash(words, 3, 5), h);
  LearnOptions len = base;
  len.eq_test_max_length = 5;
  EXPECT_NE(learn_options_hash(len, 3, 5), h);
  EXPECT_NE(learn_options_hash(base, 4, 5), h);
  EXPECT_NE(learn_options_hash(base, 3, 4), h);
}

// ---------------------------------------------------------------------------
// Supervised == plain (the wrapper is answer-transparent)

TEST(LearnSupervisor, UnjournaledSupervisedMatchesPlainLearn) {
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  expect_matches_reference(run, "unjournaled");
  EXPECT_EQ(run.attempts, 1);
  EXPECT_EQ(run.failure, LearnFailure::kNone);
  EXPECT_EQ(run.adopted, 0u);
  EXPECT_EQ(run.replayed, 0u);
  EXPECT_EQ(run.journal_records, 0u);
  EXPECT_EQ(run.result.arbitrations, 0);
}

TEST(LearnSupervisor, CleanJournaledRunMatchesPlainLearn) {
  const Reference& ref = reference();
  expect_matches_reference(ref.supervised, "clean journaled");
  EXPECT_EQ(ref.supervised.journal_records,
            static_cast<std::size_t>(ref.plain.membership_queries));
  EXPECT_FALSE(ref.journal_bytes.empty());
  EXPECT_GT(ref.probes, 0);
}

TEST(LearnSupervisor, FullResumeServesEverythingFromJournal) {
  const Reference& ref = reference();
  const std::string path = temp_path("learn_full_resume.journal");
  remove_journal(path);
  spill(path, ref.journal_bytes);
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  o.resume = true;
  o.run_tag = "cls";
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  expect_matches_reference(run, "full resume");
  EXPECT_EQ(run.adopted, ref.supervised.journal_records);
  EXPECT_EQ(run.replayed, run.adopted);  // everything served from the journal
  EXPECT_EQ(run.journal_records, ref.supervised.journal_records);
  // The rewritten journal is byte-identical to the one it resumed from.
  EXPECT_EQ(slurp(path), ref.journal_bytes);
}

// ---------------------------------------------------------------------------
// Kill-at-every-journal-byte resume sweep

void run_resume_sweep(const std::string& tag, const std::string& journal_bytes,
                      const std::function<SupervisedLearn(const std::string&)>& resume_run) {
  // Offsets: every record boundary (a kill between queries) plus a stride of
  // mid-line cuts (a kill mid-write / torn tail); every byte when exhaustive.
  std::set<std::size_t> offsets = {0, journal_bytes.size()};
  if (exhaustive_sweeps()) {
    for (std::size_t i = 0; i <= journal_bytes.size(); ++i) offsets.insert(i);
  } else {
    std::vector<std::size_t> boundaries;
    for (std::size_t i = 0; i < journal_bytes.size(); ++i) {
      if (journal_bytes[i] == '\n') boundaries.push_back(i + 1);
    }
    const std::size_t bstride = std::max<std::size_t>(1, boundaries.size() / 48);
    for (std::size_t b = 0; b < boundaries.size(); b += bstride) offsets.insert(boundaries[b]);
    const std::size_t stride = std::max<std::size_t>(1, journal_bytes.size() / 64);
    for (std::size_t i = 0; i <= journal_bytes.size(); i += stride) offsets.insert(i);
  }
  const std::string path = temp_path("learn_sweep_" + tag + ".journal");
  for (const std::size_t offset : offsets) {
    remove_journal(path);
    spill(path, journal_bytes.substr(0, offset));
    const SupervisedLearn run = resume_run(path);
    expect_matches_reference(run, ("offset " + std::to_string(offset)).c_str());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LearnSupervisor, KillAtEveryJournalByteResumesByteIdentical) {
  const Reference& ref = reference();
  ASSERT_TRUE(ref.supervised.result.converged);
  run_resume_sweep("inproc", ref.journal_bytes, [](const std::string& path) {
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = path;
    o.resume = true;
    o.run_tag = "cls";
    UeSul sul(ue::StackProfile::cls());
    return learn_supervised(sul, o);
  });
}

// ---------------------------------------------------------------------------
// Resume discipline

TEST(LearnSupervisor, ResumeRefusalNamesBothFingerprints) {
  const Reference& ref = reference();
  const std::string path = temp_path("learn_refusal.journal");
  remove_journal(path);
  spill(path, ref.journal_bytes);
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.learn.seed = 0xD00D;  // different fingerprint
  o.journal_path = path;
  o.resume = true;
  o.run_tag = "cls";
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_TRUE(run.aborted);
  EXPECT_TRUE(run.result.inconclusive);
  const std::string ours = learn_options_hash(o.learn, o.arbitration_k, o.arbitration_n);
  const std::string theirs =
      learn_options_hash(tiny_options(), o.arbitration_k, o.arbitration_n);
  EXPECT_NE(run.abort_reason.find("resume refused"), std::string::npos) << run.abort_reason;
  EXPECT_NE(run.abort_reason.find(ours), std::string::npos) << run.abort_reason;
  EXPECT_NE(run.abort_reason.find(theirs), std::string::npos) << run.abort_reason;
  // The refused journal was not clobbered: a correct-options resume still works.
  EXPECT_EQ(slurp(path), ref.journal_bytes);
}

TEST(LearnSupervisor, TagMismatchDiscardsJournalAndStartsFresh) {
  const Reference& ref = reference();
  const std::string path = temp_path("learn_tag.journal");
  remove_journal(path);
  spill(path, ref.journal_bytes);
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  o.resume = true;
  o.run_tag = "srsue";  // reference journal is tagged cls
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  expect_matches_reference(run, "tag mismatch");
  EXPECT_EQ(run.adopted, 0u);
  EXPECT_NE(run.journal_note.find("mismatch"), std::string::npos) << run.journal_note;
}

TEST(LearnSupervisor, MalformedRecordStopsAdoptionAtValidPrefix) {
  const Reference& ref = reference();
  // First two real payload lines out of the reference journal.
  std::vector<std::string> lines;
  std::istringstream in(ref.journal_bytes);
  for (std::string line; std::getline(in, line) && lines.size() < 3;) {
    lines.push_back(line.substr(9));  // strip the "%08x " CRC tag
  }
  ASSERT_EQ(lines.size(), 3u);
  const std::string path = temp_path("learn_malformed.journal");
  craft_journal(path, {lines[0], lines[1], "obs 2 power_on paging attach_request", lines[2]});
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  o.resume = true;
  o.run_tag = "cls";
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  expect_matches_reference(run, "malformed record");
  EXPECT_EQ(run.adopted, 1u);
  EXPECT_NE(run.journal_note.find("record 2"), std::string::npos) << run.journal_note;
  EXPECT_NE(run.journal_note.find("malformed"), std::string::npos) << run.journal_note;
}

TEST(LearnSupervisor, ContradictingRecordStopsAdoptionAtValidPrefix) {
  const std::string header = encode_learn_header("cls", learn_options_hash(tiny_options(), 3, 5));
  const std::string path = temp_path("learn_contradict.journal");
  craft_journal(path, {header, "obs 1 power_on attach_request",
                       "obs 2 power_on paging bogus_output service_request"});
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  o.resume = true;
  o.run_tag = "cls";
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_FALSE(run.aborted);
  EXPECT_EQ(run.adopted, 1u);
  EXPECT_NE(run.journal_note.find("contradicts"), std::string::npos) << run.journal_note;
}

TEST(LearnSupervisor, ConcurrentLockAborts) {
  const std::string path = temp_path("learn_locked.journal");
  remove_journal(path);
  JournalLock held;
  ASSERT_TRUE(held.acquire(path));
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_TRUE(run.aborted);
  EXPECT_NE(run.abort_reason.find("concurrent learn run"), std::string::npos)
      << run.abort_reason;
}

TEST(LearnSupervisor, InvalidArbitrationThresholdAborts) {
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.arbitration_k = 2;
  o.arbitration_n = 5;  // 2-of-5 is not a majority
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_TRUE(run.aborted);
  EXPECT_NE(run.abort_reason.find("invalid arbitration"), std::string::npos);
}

TEST(LearnSupervisor, ExternalCancelIsStructured) {
  CancelToken cancel;
  cancel.cancel();
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.cancel = &cancel;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_FALSE(run.aborted);
  EXPECT_EQ(run.failure, LearnFailure::kCancelled);
  EXPECT_TRUE(run.result.inconclusive);
  EXPECT_FALSE(run.result.converged);
}

// ---------------------------------------------------------------------------
// Exception injection at every query probe

TEST(LearnSupervisor, ExceptionAtEveryProbeRetriesToByteIdentical) {
  const Reference& ref = reference();
  ASSERT_GT(ref.probes, 0);
  const long stride =
      exhaustive_sweeps() ? 1 : std::max<long>(1, ref.probes / 40);
  const std::string path = temp_path("learn_probe.journal");
  for (long p = 0; p < ref.probes; p += stride) {
    remove_journal(path);
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = path;
    o.run_tag = "cls";
    o.retries = 1;
    o.backoff_seconds = 0;
    o.fault_hook = [p](long probe) {
      if (probe == p) throw std::runtime_error("injected crash at probe " + std::to_string(p));
    };
    UeSul sul(ue::StackProfile::cls());
    const SupervisedLearn run = learn_supervised(sul, o);
    expect_matches_reference(run, ("probe " + std::to_string(p)).c_str());
    EXPECT_EQ(run.attempts, 2) << "probe " << p;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LearnSupervisor, ExceptionWithoutRetryIsStructuredThenResumable) {
  const Reference& ref = reference();
  const std::string path = temp_path("learn_probe_noretry.journal");
  for (const long p : {0L, ref.probes / 3, ref.probes - 1}) {
    remove_journal(path);
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = path;
    o.run_tag = "cls";
    o.fault_hook = [p](long probe) {
      if (probe == p) throw std::runtime_error("injected crash");
    };
    {
      UeSul sul(ue::StackProfile::cls());
      const SupervisedLearn crashed = learn_supervised(sul, o);
      EXPECT_EQ(crashed.failure, LearnFailure::kException) << "probe " << p;
      EXPECT_TRUE(crashed.result.inconclusive);
      EXPECT_NE(crashed.result.note.find("worker exception"), std::string::npos)
          << crashed.result.note;
    }
    // A separate process would now --resume: byte-identical completion.
    LearnSupervisorOptions r;
    r.learn = tiny_options();
    r.journal_path = path;
    r.resume = true;
    r.run_tag = "cls";
    UeSul sul(ue::StackProfile::cls());
    const SupervisedLearn resumed = learn_supervised(sul, r);
    expect_matches_reference(resumed, ("resume after probe " + std::to_string(p)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Watchdogs and the retry/degrade ladder

TEST(LearnSupervisor, DeadlineTripsToStructuredInconclusive) {
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.deadline_seconds = 1e-9;  // every fresh query is already too late
  o.backoff_seconds = 0;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_FALSE(run.aborted);
  EXPECT_EQ(run.failure, LearnFailure::kDeadline);
  EXPECT_TRUE(run.result.inconclusive);
  EXPECT_FALSE(run.result.converged);
  EXPECT_NE(run.result.note.find("deadline"), std::string::npos) << run.result.note;
}

TEST(LearnSupervisor, QueryBudgetWithJournalMakesIncrementalProgress) {
  const std::string path = temp_path("learn_budget.journal");
  remove_journal(path);
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.journal_path = path;
  o.run_tag = "cls";
  o.query_budget = 150;  // far below the total query count
  o.retries = 30;
  o.degrade_factor = 1.0;  // keep the oracle intact so the run stays byte-identical
  o.backoff_seconds = 0;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  expect_matches_reference(run, "budgeted");
  EXPECT_GT(run.attempts, 1);
  EXPECT_GT(run.replayed, 0u);
}

TEST(LearnSupervisor, ExhaustedBudgetSurfacesPersistedFailure) {
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.query_budget = 5;  // no journal: every attempt starts over and trips
  o.retries = 2;
  o.backoff_seconds = 0;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_EQ(run.failure, LearnFailure::kQueryBudget);
  EXPECT_EQ(run.attempts, 3);
  EXPECT_TRUE(run.result.inconclusive);
  EXPECT_NE(run.result.note.find("persisted through 3 attempts"), std::string::npos)
      << run.result.note;
}

TEST(LearnSupervisor, ByteBudgetTripsStructured) {
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.byte_budget = 20;
  o.backoff_seconds = 0;
  UeSul sul(ue::StackProfile::cls());
  const SupervisedLearn run = learn_supervised(sul, o);
  EXPECT_EQ(run.failure, LearnFailure::kByteBudget);
  EXPECT_TRUE(run.result.inconclusive);
}

// ---------------------------------------------------------------------------
// Nondeterminism arbitration

/// Flips one observation once: the first exact query of [power_on, paging]
/// reports a wrong output at position 1. First-observation-wins caches the
/// lie forever; k-of-n arbitration outvotes it.
class FlakyOnceSul final : public Sul {
 public:
  FlakyOnceSul() : inner_(ue::StackProfile::cls()) {}

  void reset() override { inner_.reset(); }
  std::string step(const std::string& input) override { return inner_.step(input); }
  long resets() const override { return inner_.resets(); }
  long steps() const override { return inner_.steps(); }

  std::vector<std::string> query_word(const std::vector<std::string>& word) override {
    std::vector<std::string> outs = Sul::query_word(word);
    if (!flipped_ && word.size() >= 2 && word[0] == "power_on" && word[1] == "paging") {
      flipped_ = true;
      outs[1] = "flaky_" + outs[1];
    }
    return outs;
  }

 private:
  UeSul inner_;
  bool flipped_ = false;
};

TEST(LearnArbitration, FirstObservationWinsPinsTheWrongEdge) {
  // The pre-supervisor behavior this PR exists to fix: the plain learner
  // caches the flaky answer and builds it into the machine.
  FlakyOnceSul flaky;
  const LearnResult plain = learn_mealy(flaky, tiny_options());
  ASSERT_TRUE(plain.converged);
  EXPECT_NE(fsm_text(plain), reference().fsm);
  EXPECT_NE(fsm_text(plain).find("flaky_"), std::string::npos);
}

TEST(LearnArbitration, ThreeOfFiveConvergesToTheTrueMachine) {
  FlakyOnceSul flaky;
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  const SupervisedLearn run = learn_supervised(flaky, o);
  expect_matches_reference(run, "arbitrated flaky");
  EXPECT_EQ(fsm_text(run.result).find("flaky_"), std::string::npos);
  EXPECT_GE(run.result.arbitrations, 1);
  EXPECT_GE(run.result.arbitration_requeries, 5);
  EXPECT_GE(run.result.arbitration_overrides, 1);
  EXPECT_TRUE(run.result.quarantined.empty());
}

TEST(LearnArbitration, DisabledArbitrationKeepsFirstObservation) {
  FlakyOnceSul flaky;
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.arbitration_n = 0;  // explicit opt-out: the old trie policy
  const SupervisedLearn run = learn_supervised(flaky, o);
  EXPECT_FALSE(run.aborted);
  EXPECT_EQ(run.result.arbitrations, 0);
  ASSERT_TRUE(run.result.converged);
  EXPECT_NE(fsm_text(run.result), reference().fsm);  // the lie survives, by request
}

/// Answers [power_on, paging] with an alternating output at position 1 on
/// every query — no stable majority exists at any sample size.
class ContestedSul final : public Sul {
 public:
  ContestedSul() : inner_(ue::StackProfile::cls()) {}

  void reset() override { inner_.reset(); }
  std::string step(const std::string& input) override { return inner_.step(input); }
  long resets() const override { return inner_.resets(); }
  long steps() const override { return inner_.steps(); }

  std::vector<std::string> query_word(const std::vector<std::string>& word) override {
    std::vector<std::string> outs = Sul::query_word(word);
    if (word.size() >= 2 && word[0] == "power_on" && word[1] == "paging" &&
        (queries_++ % 2 == 0)) {
      outs[1] = "flap_" + outs[1];
    }
    return outs;
  }

 private:
  UeSul inner_;
  long queries_ = 0;
};

TEST(LearnArbitration, UnresolvedCellIsQuarantinedNeverAWrongMachine) {
  ContestedSul contested;
  LearnSupervisorOptions o;
  o.learn = tiny_options();
  o.arbitration_k = 4;  // alternating answers can reach at most 3 of 5
  o.arbitration_n = 5;
  const SupervisedLearn run = learn_supervised(contested, o);
  EXPECT_FALSE(run.aborted);
  EXPECT_EQ(run.failure, LearnFailure::kContested);
  EXPECT_TRUE(run.result.inconclusive);
  EXPECT_FALSE(run.result.converged);
  ASSERT_FALSE(run.result.quarantined.empty());
  EXPECT_NE(run.result.quarantined.front().find("power_on.paging"), std::string::npos)
      << run.result.quarantined.front();
  EXPECT_NE(run.result.note.find("majority"), std::string::npos) << run.result.note;
}

// ---------------------------------------------------------------------------
// Remote: the same kill-resume determinism over the wire

net::RemoteSulOptions remote_options(std::uint16_t port, int batch_words) {
  net::RemoteSulOptions o;
  o.port = port;
  o.max_batch_words = batch_words;
  o.call_deadline_seconds = 2.0;
  o.connect_timeout_seconds = 0.25;
  o.backoff_base_seconds = 0.002;
  o.backoff_max_seconds = 0.02;
  return o;
}

void run_remote_sweep(const char* tag, int batch_words,
                      const net::ProxyFaultProfile* faults) {
  net::SulServerOptions sopts;
  sopts.max_sessions = 8;
  net::SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  std::uint16_t port = server.port();
  std::unique_ptr<net::ChaosProxy> proxy;
  if (faults != nullptr) {
    net::ChaosProxyOptions popts;
    popts.upstream_port = server.port();
    popts.faults = *faults;
    popts.seed = 0xC4A05;
    popts.max_delay_ms = 5;
    proxy = std::make_unique<net::ChaosProxy>(popts);
    ASSERT_TRUE(proxy->start());
    port = proxy->port();
  }

  // Remote reference: a clean journaled supervised run over this transport.
  const std::string ref_path = temp_path(std::string("learn_remote_ref_") + tag + ".journal");
  remove_journal(ref_path);
  std::string journal_bytes;
  {
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = ref_path;
    o.run_tag = "cls";
    net::RemoteUeSul sul(remote_options(port, batch_words));
    const SupervisedLearn run = learn_supervised(sul, o);
    expect_matches_reference(run, "remote reference");  // also == in-process machine
    journal_bytes = slurp(ref_path);
  }
  if (::testing::Test::HasFatalFailure()) return;

  // Sampled truncation offsets (the remote round trips make every-byte far
  // too slow for the PR gate; the in-process sweep owns full coverage).
  const std::size_t kSamples = 8;
  const std::string path = temp_path(std::string("learn_remote_sweep_") + tag + ".journal");
  for (std::size_t s = 0; s <= kSamples; ++s) {
    const std::size_t offset = journal_bytes.size() * s / kSamples;
    remove_journal(path);
    spill(path, journal_bytes.substr(0, offset));
    LearnSupervisorOptions o;
    o.learn = tiny_options();
    o.journal_path = path;
    o.resume = true;
    o.run_tag = "cls";
    o.retries = 2;  // transient transport hiccups may burn an attempt
    o.backoff_seconds = 0.005;
    net::RemoteUeSul sul(remote_options(port, batch_words));
    const SupervisedLearn run = learn_supervised(sul, o);
    expect_matches_reference(run, ("remote offset " + std::to_string(offset)).c_str());
    if (::testing::Test::HasFatalFailure()) break;
  }
  if (proxy) proxy->stop();
  server.stop();
  EXPECT_EQ(server.stats().session_errors, 0);
}

TEST(LearnSupervisorRemote, KillResumeByteIdenticalBatched) {
  run_remote_sweep("batched", net::kDefaultBatchWords, nullptr);
}

TEST(LearnSupervisorRemote, KillResumeByteIdenticalPerSymbol) {
  run_remote_sweep("v2", 0, nullptr);
}

TEST(LearnSupervisorRemote, KillResumeUnderLosslessChaos) {
  // The lossless regime mix from net_test: latency, fragmentation and
  // reordering mangle the transport but lose nothing — resume must stay
  // byte-identical through it.
  net::ProxyFaultProfile faults;
  faults.delay = 0.2;
  faults.fragment = 0.15;
  faults.reorder = 0.1;
  run_remote_sweep("chaos", net::kDefaultBatchWords, &faults);
}

}  // namespace
}  // namespace procheck::learner
