// End-to-end integration tests: the full ProChecker pipeline per stack
// profile must reproduce the paper's Table I detection matrix, and verified
// counterexamples must replay against the live stacks on the testbed (the
// paper's final validation step).
#include <gtest/gtest.h>

#include "checker/prochecker.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

namespace procheck::checker {
namespace {

const ImplementationReport& report_for(const ue::StackProfile& profile) {
  static std::map<std::string, ImplementationReport> cache;
  auto it = cache.find(profile.name);
  if (it == cache.end()) {
    it = cache.emplace(profile.name, ProChecker::analyze(profile)).first;
  }
  return it->second;
}

// --- Table I: the detection matrix ------------------------------------------------

TEST(TableOne, NewProtocolAttacksOnAllImplementations) {
  // P1–P3 are standards-level: detected on the closed-source profile and
  // both open-source profiles.
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    const ImplementationReport& rep = report_for(profile);
    EXPECT_TRUE(rep.attacks_found.count("P1")) << profile.name;
    EXPECT_TRUE(rep.attacks_found.count("P2")) << profile.name;
    EXPECT_TRUE(rep.attacks_found.count("P3")) << profile.name;
  }
}

TEST(TableOne, ImplementationIssuesMatchThePaperPattern) {
  const ImplementationReport& cls = report_for(ue::StackProfile::cls());
  const ImplementationReport& srs = report_for(ue::StackProfile::srsue());
  const ImplementationReport& oai = report_for(ue::StackProfile::oai());

  // Table I: I1 ● srs ● oai; I2 ○ srs ● oai; I3 ● srs ○ oai;
  //          I4 ● srs ○ oai; I5 ○ srs ● oai; I6 ● both.
  EXPECT_TRUE(srs.attacks_found.count("I1"));
  EXPECT_TRUE(oai.attacks_found.count("I1"));
  EXPECT_FALSE(cls.attacks_found.count("I1"));

  EXPECT_TRUE(oai.attacks_found.count("I2"));
  EXPECT_FALSE(srs.attacks_found.count("I2"));

  EXPECT_TRUE(srs.attacks_found.count("I3"));
  EXPECT_FALSE(oai.attacks_found.count("I3"));

  EXPECT_TRUE(srs.attacks_found.count("I4"));
  EXPECT_FALSE(oai.attacks_found.count("I4"));

  EXPECT_TRUE(oai.attacks_found.count("I5"));
  EXPECT_FALSE(srs.attacks_found.count("I5"));

  EXPECT_TRUE(cls.attacks_found.count("I6"));
  EXPECT_TRUE(srs.attacks_found.count("I6"));
  EXPECT_TRUE(oai.attacks_found.count("I6"));
}

TEST(TableOne, PriorAttacksRediscovered) {
  // 12 of the 14 prior rows are applicable (PR04/PR09 are the paper's "-"
  // rows) and detected on every profile.
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    const ImplementationReport& rep = report_for(profile);
    for (const char* id : {"PR01", "PR02", "PR03", "PR05", "PR06", "PR07", "PR08",
                           "PR10", "PR11", "PR12", "PR13", "PR14"}) {
      EXPECT_TRUE(rep.attacks_found.count(id)) << profile.name << " " << id;
    }
    EXPECT_FALSE(rep.attacks_found.count("PR04")) << profile.name;
    EXPECT_FALSE(rep.attacks_found.count("PR09")) << profile.name;
  }
}

TEST(TableOne, EveryAttackVerdictMapsToARow) {
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    for (const PropertyResult& r : report_for(profile).results) {
      if (r.status == PropertyResult::Status::kAttack) {
        EXPECT_FALSE(r.attack_id.empty())
            << profile.name << " " << r.property_id << " is an unmapped finding";
      }
    }
  }
}

TEST(Pipeline, AllSixtyTwoPropertiesChecked) {
  const ImplementationReport& rep = report_for(ue::StackProfile::cls());
  EXPECT_EQ(rep.results.size(), 62u);
  EXPECT_EQ(rep.verified_count() + rep.attack_count() + rep.not_applicable_count(), 62);
  EXPECT_EQ(rep.not_applicable_count(), 2);  // the "-" rows
}

TEST(Pipeline, ConformanceCoverageIsComplete) {
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    const ImplementationReport& rep = report_for(profile);
    EXPECT_DOUBLE_EQ(rep.conformance.handler_coverage, 1.0) << profile.name;
    EXPECT_GT(rep.log_records, 500u) << profile.name;
    EXPECT_GT(rep.extraction_seconds, 0.0);
  }
}

TEST(Pipeline, AblationFreshnessLimitRemovesP1P2) {
  ue::StackProfile mitigated = ue::StackProfile::cls();
  mitigated.sqn_freshness_limit = 1;
  AnalysisOptions options;
  options.only_properties = {"S01", "P01", "S05"};
  ImplementationReport rep = ProChecker::analyze(mitigated, options);
  EXPECT_FALSE(rep.attacks_found.count("P1"));
  EXPECT_FALSE(rep.attacks_found.count("P2"));
}

// --- Testbed replay of verified counterexamples (the paper's validation) ------------

TEST(TestbedReplay, P1ServiceDisruptionOnLiveStack) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  auto captured = testing::capture_dropped_challenge(tb, conn);
  ASSERT_TRUE(captured.has_value());
  int auth_before = tb.ue(conn).authentications_completed();
  tb.inject_downlink(conn, *captured);
  tb.run_until_quiet();
  // Service disruption: keys desynchronized, UE discards genuine traffic,
  // and the UE was forced through another power-consuming AKA run.
  EXPECT_GT(tb.ue(conn).authentications_completed(), auth_before);
  int discards_before = tb.ue(conn).protected_discards();
  tb.mme_guti_reallocation(conn);
  tb.run_until_quiet();
  EXPECT_GT(tb.ue(conn).protected_discards(), discards_before);
}

TEST(TestbedReplay, P3SelectiveDenialPreventsGutiRotation) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  std::string guti_before = tb.ue(conn).guti();
  // The MITM selectively drops every GUTI reallocation command.
  tb.set_downlink_interceptor([&tb, conn](int c, const nas::NasPdu& pdu) {
    auto msg = tb.decode(c, pdu, /*downlink=*/true);
    if (msg && msg->type == nas::MsgType::kGutiReallocationCommand) {
      return testing::AdversaryAction::drop();
    }
    return testing::AdversaryAction::pass();
  });
  tb.mme_guti_reallocation(conn);
  tb.run_until_quiet();
  tb.tick(mme::MmeNas::kTimerPeriod * (mme::MmeNas::kMaxRetransmissions + 1));
  // The MME aborted after five tries; both sides keep the old GUTI — the
  // victim stays trackable.
  EXPECT_EQ(tb.mme().procedures_aborted(), 1);
  EXPECT_EQ(tb.ue(conn).guti(), guti_before);
  EXPECT_EQ(tb.mme().guti(conn), guti_before);
}

TEST(TestbedReplay, I2PlainInjectionOnOai) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::oai(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  nas::NasMessage cmd(nas::MsgType::kGutiReallocationCommand);
  cmd.set_s("guti", "guti-attacker");
  tb.inject_downlink(conn, nas::encode_plain(cmd));
  tb.run_until_quiet();
  EXPECT_EQ(tb.ue(conn).guti(), "guti-attacker");
}

TEST(TestbedReplay, I6SmcReplayLinksVictimAcrossUes) {
  testing::Testbed tb;
  int victim = tb.add_ue(ue::StackProfile::cls(), "001010000000001", 0xA);
  int other = tb.add_ue(ue::StackProfile::cls(), "001010000000002", 0xB);
  ASSERT_TRUE(testing::complete_attach(tb, victim));
  ASSERT_TRUE(testing::complete_attach(tb, other));
  const nas::NasPdu* smc =
      tb.last_downlink_of_type(victim, nas::MsgType::kSecurityModeCommand);
  ASSERT_NE(smc, nullptr);
  auto victim_resp = tb.ue(victim).handle_downlink(*smc);
  auto other_resp = tb.ue(other).handle_downlink(*smc);
  ASSERT_EQ(victim_resp.size(), 1u);
  ASSERT_EQ(other_resp.size(), 1u);
  // Victim completes; others reject — distinguishable on the air.
  auto om = nas::decode_payload(other_resp[0].payload);
  ASSERT_TRUE(om.has_value());
  EXPECT_EQ(om->type, nas::MsgType::kSecurityModeReject);
  EXPECT_NE(victim_resp[0].sec_hdr, nas::SecHdr::kPlain);
}

TEST(Pipeline, ReportsAreDeterministic) {
  ImplementationReport a = ProChecker::analyze(ue::StackProfile::srsue(),
                                               {.only_properties = {"S01", "S05", "S07"}});
  ImplementationReport b = ProChecker::analyze(ue::StackProfile::srsue(),
                                               {.only_properties = {"S01", "S05", "S07"}});
  EXPECT_EQ(a.attacks_found, b.attacks_found);
  EXPECT_EQ(a.checking_model, b.checking_model);
}

}  // namespace
}  // namespace procheck::checker
