// Nightly high-intensity chaos regimes (ctest preset `nightly`, label
// chaos-nightly). These push the chaos proxy well past the PR-gate
// intensities — connection resets on >=10% of chunks and bit corruption on
// >=20% — against the multi-session server with several concurrent
// learners, and take long enough that they are excluded from the PR gate:
// without PROCHECK_NIGHTLY=1 in the environment every test skips itself.
//
// The invariant at storm intensity is honesty, not losslessness: a run
// either matches the clean in-process reference byte-for-byte or degrades
// to the structured unavailable symbol — it never hangs, crashes, or
// silently returns mangled observations — and the server itself must ride
// out the whole storm (a clean post-storm learner reproduces the
// reference, with zero session_errors).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.h"
#include "learner/learn_supervisor.h"
#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_sul.h"
#include "net/sul_server.h"
#include "ue/profile.h"

namespace procheck::net {
namespace {

bool nightly_enabled() {
  const char* v = std::getenv("PROCHECK_NIGHTLY");
  return v != nullptr && std::string(v) == "1";
}

#define REQUIRE_NIGHTLY() \
  if (!nightly_enabled()) GTEST_SKIP() << "set PROCHECK_NIGHTLY=1 (the nightly preset)"

RemoteSulOptions client_options(std::uint16_t port) {
  RemoteSulOptions o;
  o.port = port;
  o.call_deadline_seconds = 2.0;
  o.connect_timeout_seconds = 0.25;
  o.backoff_base_seconds = 0.002;
  o.backoff_max_seconds = 0.02;
  o.attempts_per_query = 6;  // storms need deeper retry budgets
  o.breaker_failure_threshold = 5;
  o.breaker_open_seconds = 0.05;
  return o;
}

learner::LearnOptions quick_learn_options() {
  learner::LearnOptions o;
  o.eq_test_words = 40;
  o.eq_test_max_length = 5;
  o.seed = 0xBEEF;
  return o;
}

std::string fsm_text(const learner::LearnResult& result) {
  return result.machine.to_fsm().to_dot("learned");
}

TEST(ChaosNightly, ResetStormIsHonestAndServerSurvives) {
  REQUIRE_NIGHTLY();
  std::string reference;
  {
    learner::UeSul sul(ue::StackProfile::cls());
    reference = fsm_text(learner::learn_mealy(sul, quick_learn_options()));
  }

  SulServerOptions sopts;
  sopts.max_sessions = 32;    // reconnect storms overlap sessions heavily
  sopts.poll_seconds = 0.01;  // reap dead sessions fast so the cap breathes
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.reset = 0.1;  // the nightly regime floor
  popts.faults.delay = 0.05;
  popts.faults.fragment = 0.05;
  ChaosProxy proxy(popts);
  ASSERT_TRUE(proxy.start());

  // At this kill rate a long word's replay dies with high probability on
  // every attempt, so a run may legitimately degrade; the contract is that
  // each learner either reproduces the reference exactly or says it could
  // not — and that the server itself rides out the whole storm.
  constexpr int kClients = 2;
  std::vector<learner::LearnResult> results(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RemoteUeSul remote(client_options(proxy.port()));
      results[static_cast<std::size_t>(i)] =
          learner::learn_mealy(remote, quick_learn_options());
    });
  }
  for (std::thread& t : threads) t.join();
  proxy.stop();
  EXPECT_GT(proxy.stats().resets, 0) << "reset regime never fired";
  for (int i = 0; i < kClients; ++i) {
    const learner::LearnResult& r = results[static_cast<std::size_t>(i)];
    if (!r.inconclusive) {
      EXPECT_EQ(fsm_text(r), reference) << "learner " << i << " silently diverged";
    }
  }

  // Liveness after the storm: a clean learner straight at the server (no
  // proxy) must reproduce the reference — the session pile-up from hundreds
  // of killed connections left no wedged state behind.
  {
    RemoteUeSul remote(client_options(server.port()));
    learner::LearnResult clean = learner::learn_mealy(remote, quick_learn_options());
    ASSERT_FALSE(clean.inconclusive) << clean.note;
    EXPECT_EQ(fsm_text(clean), reference);
  }
  server.stop();
  EXPECT_EQ(server.stats().session_errors, 0);
}

TEST(ChaosNightly, CorruptionStormDegradesStructurallyOrMatches) {
  REQUIRE_NIGHTLY();
  std::string reference;
  {
    learner::UeSul sul(ue::StackProfile::cls());
    reference = fsm_text(learner::learn_mealy(sul, quick_learn_options()));
  }

  SulServerOptions sopts;
  sopts.max_sessions = 8;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.corrupt = 0.2;  // the nightly regime floor: lossy
  popts.faults.reset = 0.05;
  ChaosProxy proxy(popts);
  ASSERT_TRUE(proxy.start());

  constexpr int kClients = 2;
  std::vector<learner::LearnResult> results(kClients);
  std::vector<long> framing_errors(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RemoteUeSul remote(client_options(proxy.port()));
      results[static_cast<std::size_t>(i)] =
          learner::learn_mealy(remote, quick_learn_options());
      framing_errors[static_cast<std::size_t>(i)] = remote.stats().framing_errors;
    });
  }
  for (std::thread& t : threads) t.join();
  proxy.stop();
  server.stop();

  EXPECT_GT(proxy.stats().corrupted, 0) << "corruption regime never fired";
  for (int i = 0; i < kClients; ++i) {
    const learner::LearnResult& r = results[static_cast<std::size_t>(i)];
    if (r.inconclusive) {
      // Structured degradation: the result says so, it doesn't lie.
      EXPECT_FALSE(r.converged) << "learner " << i;
    } else {
      // Every corrupted frame was caught by the CRC and recovered by
      // replay, so the result must be the clean one — honest either way.
      EXPECT_EQ(fsm_text(r), reference) << "learner " << i;
    }
  }
  // At this corruption intensity the CRC must actually have been exercised.
  long total_framing = 0;
  for (long f : framing_errors) total_framing += f;
  EXPECT_GT(total_framing, 0) << "corruption never reached a client";
}

// Satellite (f): the wire-v3 batched word protocol under the full nightly
// storm — connection resets at the 0.1 floor *and* corruption at the 0.2
// floor at once, with the batch window pipelining frames into the blender.
// A killed connection mid-pipeline drops a whole in-flight window; the
// contract is the usual honesty one, plus that batching itself keeps
// engaging across reconnects (the hello re-negotiates the grant every time).
TEST(ChaosNightly, BatchedStormIsHonestAndKeepsNegotiating) {
  REQUIRE_NIGHTLY();
  std::string reference;
  {
    learner::UeSul sul(ue::StackProfile::cls());
    reference = fsm_text(learner::learn_mealy(sul, quick_learn_options()));
  }

  SulServerOptions sopts;
  sopts.max_sessions = 32;
  sopts.poll_seconds = 0.01;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.reset = 0.1;     // nightly floor: kill whole pipeline windows
  popts.faults.corrupt = 0.2;   // nightly floor: poison batch acks in flight
  popts.faults.fragment = 0.05;
  ChaosProxy proxy(popts);
  ASSERT_TRUE(proxy.start());

  constexpr int kClients = 2;
  std::vector<learner::LearnResult> results(kClients);
  std::vector<RemoteSulStats> stats(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RemoteSulOptions copts = client_options(proxy.port());
      copts.max_batch_words = kDefaultBatchWords;  // the batched regime, explicitly
      copts.max_inflight_batches = 4;
      RemoteUeSul remote(copts);
      results[static_cast<std::size_t>(i)] =
          learner::learn_mealy(remote, quick_learn_options());
      stats[static_cast<std::size_t>(i)] = remote.stats();
    });
  }
  for (std::thread& t : threads) t.join();
  proxy.stop();

  EXPECT_GT(proxy.stats().resets, 0) << "reset regime never fired";
  EXPECT_GT(proxy.stats().corrupted, 0) << "corruption regime never fired";
  long total_batches = 0;
  for (int i = 0; i < kClients; ++i) {
    const learner::LearnResult& r = results[static_cast<std::size_t>(i)];
    if (r.inconclusive) {
      EXPECT_FALSE(r.converged) << "learner " << i;
    } else {
      EXPECT_EQ(fsm_text(r), reference) << "learner " << i << " silently diverged";
    }
    total_batches += stats[static_cast<std::size_t>(i)].batch_queries;
  }
  EXPECT_GT(total_batches, 0) << "the storm starved the batch path entirely";

  // Liveness after the storm, over the batched protocol as well.
  {
    RemoteUeSul remote(client_options(server.port()));
    learner::LearnResult clean = learner::learn_mealy(remote, quick_learn_options());
    ASSERT_FALSE(clean.inconclusive) << clean.note;
    EXPECT_EQ(fsm_text(clean), reference);
    EXPECT_GT(remote.stats().batch_queries, 0);
  }
  server.stop();
  EXPECT_EQ(server.stats().session_errors, 0);
}

// --- SIGKILL learner storm ---------------------------------------------------

// Re-exec'd worker for the SIGKILL storm: one remote supervised learner
// resuming the shared journal. The parent kills most instances mid-learn;
// the last one must run to convergence and exit 0.
TEST(LearnStormChild, DISABLED_Run) {
  const char* port_env = std::getenv("PROCHECK_STORM_PORT");
  const char* journal_env = std::getenv("PROCHECK_STORM_JOURNAL");
  ASSERT_NE(port_env, nullptr);
  ASSERT_NE(journal_env, nullptr);
  learner::LearnSupervisorOptions o;
  o.learn = quick_learn_options();
  o.journal_path = journal_env;
  o.resume = true;
  o.run_tag = "cls";
  o.retries = 2;
  o.backoff_seconds = 0.005;
  o.journal_commit_every = 8;  // commit often so every kill leaves progress behind
  RemoteUeSul remote(client_options(static_cast<std::uint16_t>(std::atoi(port_env))));
  const learner::SupervisedLearn run = learner::learn_supervised(remote, o);
  ASSERT_FALSE(run.aborted) << run.abort_reason;
  ASSERT_TRUE(run.result.converged) << run.result.note;
}

// SIGKILL at a seeded random point inside every learner, a dozen times in a
// row, against the live multi-session server. Each successor steals the dead
// holder's stale journal lock, adopts the committed prefix, and continues;
// the final un-killed worker converges, and an in-process resume of the same
// journal reproduces the clean reference machine. The server rides out every
// kill with zero session errors.
TEST(ChaosNightly, SigkillLearnerStormResumesToCompletion) {
  REQUIRE_NIGHTLY();
  std::string reference;
  {
    learner::UeSul sul(ue::StackProfile::cls());
    reference = fsm_text(learner::learn_mealy(sul, quick_learn_options()));
  }

  SulServerOptions sopts;
  sopts.max_sessions = 4;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  const std::string journal = ::testing::TempDir() + "storm_learn.journal";
  std::remove(journal.c_str());
  std::remove((journal + ".lock").c_str());
  std::remove((journal + ".tmp").c_str());
  const std::string port = std::to_string(server.port());
  ASSERT_EQ(setenv("PROCHECK_STORM_PORT", port.c_str(), 1), 0);
  ASSERT_EQ(setenv("PROCHECK_STORM_JOURNAL", journal.c_str(), 1), 0);

  const auto spawn_child = [] {
    pid_t pid = fork();
    if (pid == 0) {
      execl("/proc/self/exe", "chaos_nightly_test",
            "--gtest_filter=LearnStormChild.DISABLED_Run", "--gtest_also_run_disabled_tests",
            static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    return pid;
  };

  Rng rng(0x516C111ULL);
  for (int i = 0; i < 12; ++i) {
    const pid_t pid = spawn_child();
    ASSERT_GT(pid, 0);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(5 + static_cast<int>(rng.next_below(76))));
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status) || WIFEXITED(status));
  }

  // The final, unmolested worker must finish the job.
  {
    const pid_t pid = spawn_child();
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "final storm worker failed";
  }

  // In-process resume of the storm journal reproduces the clean reference.
  {
    learner::LearnSupervisorOptions o;
    o.learn = quick_learn_options();
    o.journal_path = journal;
    o.resume = true;
    o.run_tag = "cls";
    learner::UeSul sul(ue::StackProfile::cls());
    const learner::SupervisedLearn run = learner::learn_supervised(sul, o);
    ASSERT_FALSE(run.aborted) << run.abort_reason;
    ASSERT_TRUE(run.result.converged) << run.result.note;
    EXPECT_EQ(fsm_text(run.result), reference) << "storm journal led to a different machine";
    EXPECT_GT(run.adopted, 0u) << "twelve kills left no committed progress at all";
    EXPECT_EQ(run.replayed, run.adopted);
  }

  server.stop();
  EXPECT_EQ(server.stats().session_errors, 0);
  unsetenv("PROCHECK_STORM_PORT");
  unsetenv("PROCHECK_STORM_JOURNAL");
}

}  // namespace
}  // namespace procheck::net
