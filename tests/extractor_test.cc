// Model-extractor tests: Algorithm 1 on the paper's Fig. 3 running example,
// the ordered/substate-aware variant, block division, signature tables, and
// end-to-end extraction from real conformance logs.
#include <gtest/gtest.h>

#include <algorithm>

#include "extractor/extractor.h"
#include "testing/conformance.h"

namespace procheck::extractor {
namespace {

using instrument::LogRecord;
using instrument::TraceLogger;

Signatures fig3_signatures() {
  Signatures sigs;
  sigs.state_signatures = {"UE_REGISTERED_INIT", "UE_REGISTERED"};
  sigs.incoming_prefixes = {"recv_"};
  sigs.outgoing_prefixes = {"send_"};
  return sigs;
}

/// The Fig. 3(d) log of the paper's running example.
std::string fig3_log() {
  TraceLogger log;
  log.enter("air_msg_handler");
  log.local("msg_type", "ATTACH_ACCEPT");
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.enter("send_attach_complete");
  log.local("mac_valid", 1);
  log.global("emm_state", "UE_REGISTERED");
  return log.text();
}

// --- Algorithm 1 (basic extraction) -------------------------------------------

TEST(Algorithm1, Fig3RunningExample) {
  ExtractionOptions opts;
  opts.include_condition_locals = false;  // the literal Algorithm 1
  fsm::Fsm m = extract_basic(instrument::parse_log(fig3_log()), fig3_signatures(), opts);
  ASSERT_EQ(m.transitions().size(), 1u);
  const fsm::Transition& t = m.transitions()[0];
  EXPECT_EQ(t.from, "UE_REGISTERED_INIT");
  EXPECT_EQ(t.to, "UE_REGISTERED");
  EXPECT_EQ(t.conditions, (std::set<fsm::Atom>{"attach_accept"}));
  EXPECT_EQ(t.actions, (std::set<fsm::Atom>{"attach_complete"}));
}

TEST(Algorithm1, ConditionLocalsIncludedWhenEnabled) {
  fsm::Fsm m = extract_basic(instrument::parse_log(fig3_log()), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].conditions,
            (std::set<fsm::Atom>{"attach_accept", "mac_valid=1"}));
}

TEST(Algorithm1, NullActionWhenNoOutgoingMessage) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.local("mac_valid", 0);
  fsm::Fsm m = extract_basic(log.records(), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].actions, (std::set<fsm::Atom>{fsm::kNullAction}));
  EXPECT_EQ(m.transitions()[0].from, m.transitions()[0].to);  // self-loop
}

TEST(Algorithm1, MultipleBlocks) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.enter("send_attach_complete");
  log.global("emm_state", "UE_REGISTERED");
  log.enter("recv_detach_request");
  log.global("emm_state", "UE_REGISTERED");
  log.enter("send_detach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  fsm::Fsm m = extract_basic(log.records(), fig3_signatures(), {});
  EXPECT_EQ(m.transitions().size(), 2u);
  EXPECT_EQ(m.conditions(), (std::set<fsm::Atom>{"attach_accept", "detach_request"}));
  EXPECT_EQ(m.actions(), (std::set<fsm::Atom>{"attach_complete", "detach_accept"}));
}

TEST(Algorithm1, InitialStateDefaultsToFirstObserved) {
  fsm::Fsm m = extract_basic(instrument::parse_log(fig3_log()), fig3_signatures(), {});
  EXPECT_EQ(m.initial(), "UE_REGISTERED_INIT");
  ExtractionOptions opts;
  opts.initial_state = "UE_REGISTERED";
  fsm::Fsm m2 = extract_basic(instrument::parse_log(fig3_log()), fig3_signatures(), opts);
  EXPECT_EQ(m2.initial(), "UE_REGISTERED");
}

TEST(Algorithm1, RecordsBeforeFirstIncomingIgnored) {
  TraceLogger log;
  log.global("emm_state", "UE_REGISTERED");  // no enclosing block
  log.enter("send_attach_complete");         // outgoing outside a block
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  fsm::Fsm m = extract_basic(log.records(), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].actions, (std::set<fsm::Atom>{fsm::kNullAction}));
}

TEST(Algorithm1, TestCaseMarkerClosesBlock) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.test_case("TC_2");
  // Records after the marker but before the next incoming handler belong to
  // no block.
  log.global("emm_state", "UE_REGISTERED");
  log.enter("send_attach_complete");
  fsm::Fsm m = extract_basic(log.records(), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].to, "UE_REGISTERED_INIT");
  EXPECT_EQ(m.transitions()[0].actions, (std::set<fsm::Atom>{fsm::kNullAction}));
}

TEST(Algorithm1, BlocksWithoutStatesSkipped) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.local("mac_valid", 0);
  fsm::Fsm m = extract_basic(log.records(), fig3_signatures(), {});
  EXPECT_TRUE(m.transitions().empty());
}

// --- Ordered (substate-aware) extraction ----------------------------------------

TEST(ChainedExtraction, SplitsOnIntermediateStates) {
  Signatures sigs;
  sigs.state_signatures = {"REGISTERED", "ATTACH_NEEDED", "DEREGISTERED"};
  sigs.incoming_prefixes = {"recv_"};
  sigs.outgoing_prefixes = {"send_"};

  TraceLogger log;
  log.enter("recv_detach_request");
  log.global("emm_state", "REGISTERED");
  log.local("reattach_required", 1);
  log.global("emm_state", "ATTACH_NEEDED");
  log.enter("send_detach_accept");
  log.global("emm_state", "DEREGISTERED");

  fsm::Fsm m = extract(log.records(), sigs, {});
  ASSERT_EQ(m.transitions().size(), 2u);
  // Segment 1: the condition local guards the first hop; no action yet.
  const fsm::Transition& t1 = m.transitions()[0];
  EXPECT_EQ(t1.from, "REGISTERED");
  EXPECT_EQ(t1.to, "ATTACH_NEEDED");
  EXPECT_TRUE(t1.conditions.count("detach_request"));
  EXPECT_TRUE(t1.conditions.count("reattach_required=1"));
  EXPECT_EQ(t1.actions, (std::set<fsm::Atom>{fsm::kNullAction}));
  // Segment 2: the responsive action attaches to the hop it occurred in.
  const fsm::Transition& t2 = m.transitions()[1];
  EXPECT_EQ(t2.from, "ATTACH_NEEDED");
  EXPECT_EQ(t2.to, "DEREGISTERED");
  EXPECT_EQ(t2.actions, (std::set<fsm::Atom>{"detach_accept"}));
}

TEST(ChainedExtraction, SingleStateChangeYieldsOneTransition) {
  fsm::Fsm m = extract(instrument::parse_log(fig3_log()), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].from, "UE_REGISTERED_INIT");
  EXPECT_EQ(m.transitions()[0].to, "UE_REGISTERED");
}

TEST(ChainedExtraction, ConsecutiveDuplicateStatesCollapsed) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.global("emm_state", "UE_REGISTERED_INIT");  // re-logged at exit
  log.global("emm_state", "UE_REGISTERED");
  log.global("emm_state", "UE_REGISTERED");
  fsm::Fsm m = extract(log.records(), fig3_signatures(), {});
  EXPECT_EQ(m.transitions().size(), 1u);
}

TEST(ChainedExtraction, TrailingLocalsAttachToLastTransition) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.global("emm_state", "UE_REGISTERED");
  log.local("guti_assigned", 1);  // after the final state observation
  fsm::Fsm m = extract(log.records(), fig3_signatures(), {});
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_TRUE(m.transitions()[0].conditions.count("guti_assigned=1"));
}

// --- Signature tables -------------------------------------------------------------

TEST(SignatureTables, UeProfilePrefixes) {
  Signatures cls = ue_signatures(ue::StackProfile::cls());
  EXPECT_EQ(cls.incoming_prefixes, (std::vector<std::string>{"recv_"}));
  EXPECT_EQ(cls.outgoing_prefixes, (std::vector<std::string>{"send_"}));
  Signatures oai = ue_signatures(ue::StackProfile::oai());
  EXPECT_EQ(oai.incoming_prefixes, (std::vector<std::string>{"emm_recv_"}));
  // The TS 24.301 state names are the state signatures.
  EXPECT_NE(std::find(cls.state_signatures.begin(), cls.state_signatures.end(),
                      "EMM_REGISTERED"),
            cls.state_signatures.end());
}

TEST(SignatureTables, MmeSignatures) {
  Signatures mme = mme_signatures();
  EXPECT_NE(std::find(mme.state_signatures.begin(), mme.state_signatures.end(),
                      "MME_REGISTERED"),
            mme.state_signatures.end());
}

// --- End-to-end: real conformance logs -----------------------------------------------

class ExtractFromConformance : public ::testing::TestWithParam<ue::StackProfile> {};

TEST_P(ExtractFromConformance, ProducesPlausibleMachine) {
  instrument::TraceLogger trace;
  testing::run_conformance(GetParam(), trace);
  ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm m = extract(trace.records(), ue_signatures(GetParam()), opts);

  fsm::Fsm::Stats stats = m.stats();
  EXPECT_GE(stats.states, 6u);
  EXPECT_GE(stats.transitions, 20u);
  EXPECT_GE(stats.conditions, 25u);
  // All states reachable from EMM_DEREGISTERED.
  EXPECT_EQ(m.reachable().size(), stats.states);
  // The attach flow's key transitions exist.
  EXPECT_TRUE(m.conditions().count("attach_accept"));
  EXPECT_TRUE(m.conditions().count("authentication_request"));
  EXPECT_TRUE(m.actions().count("attach_complete"));
  EXPECT_TRUE(m.actions().count("authentication_response"));
}

INSTANTIATE_TEST_SUITE_P(Profiles, ExtractFromConformance,
                         ::testing::Values(ue::StackProfile::cls(), ue::StackProfile::srsue(),
                                           ue::StackProfile::oai()),
                         [](const auto& info) { return info.param.name; });

TEST(ExtractFromConformanceLog, DeviationAtomsAppearOnlyForDeviantProfiles) {
  auto extract_flat = [](const ue::StackProfile& profile) {
    instrument::TraceLogger trace;
    testing::run_conformance(profile, trace);
    ExtractionOptions opts;
    opts.chain_substates = false;
    opts.initial_state = "EMM_DEREGISTERED";
    return extract_basic(trace.records(), ue_signatures(profile), opts);
  };
  fsm::Fsm cls = extract_flat(ue::StackProfile::cls());
  fsm::Fsm srs = extract_flat(ue::StackProfile::srsue());
  fsm::Fsm oai = extract_flat(ue::StackProfile::oai());

  // I1/I3 atoms: srs only. I2 atom: oai only.
  EXPECT_FALSE(cls.conditions().count("replay_accepted=1"));
  EXPECT_TRUE(srs.conditions().count("replay_accepted=1"));
  EXPECT_TRUE(srs.conditions().count("counter_reset=1"));
  EXPECT_FALSE(cls.conditions().count("plain_accepted_after_ctx=1"));
  EXPECT_TRUE(oai.conditions().count("plain_accepted_after_ctx=1"));
  EXPECT_FALSE(srs.conditions().count("plain_accepted_after_ctx=1"));
  // I6 atom: all profiles (the shared deviation).
  EXPECT_TRUE(cls.conditions().count("smc_replay=1"));
  EXPECT_TRUE(srs.conditions().count("smc_replay=1"));
  EXPECT_TRUE(oai.conditions().count("smc_replay=1"));
}

TEST(ExtractFromConformanceLog, ExtractionFromTextEqualsFromRecords) {
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  Signatures sigs = ue_signatures(ue::StackProfile::cls());
  ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm from_records = extract(trace.records(), sigs, opts);
  fsm::Fsm from_text = extract(trace.text(), sigs, opts);
  EXPECT_EQ(from_records, from_text);
}

TEST(ExtractFromConformanceLog, MmeSideExtractionWorksToo) {
  // DESIGN.md §7: the extractor also applies to the network side when its
  // layer is instrumented.
  instrument::TraceLogger ue_trace;
  instrument::TraceLogger mme_trace;
  testing::Testbed tb(&ue_trace, &mme_trace);
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  tb.ue_detach(conn);
  tb.run_until_quiet();

  fsm::Fsm mme_fsm = extract(mme_trace.records(), mme_signatures(), {});
  EXPECT_GE(mme_fsm.stats().states, 3u);
  EXPECT_TRUE(mme_fsm.conditions().count("attach_request"));
  EXPECT_TRUE(mme_fsm.actions().count("authentication_request"));
}

TEST(ExtractFromConformanceLog, ChainedIsRicherThanBasic) {
  // RQ2's premise: the substate-aware machine has at least as many states
  // and transitions as the flat one.
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  Signatures sigs = ue_signatures(ue::StackProfile::cls());
  ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm rich = extract(trace.records(), sigs, opts);
  ExtractionOptions flat_opts = opts;
  flat_opts.chain_substates = false;
  fsm::Fsm flat = extract_basic(trace.records(), sigs, flat_opts);
  EXPECT_GE(rich.stats().states, flat.stats().states);
  EXPECT_GE(rich.stats().transitions, flat.stats().transitions);
}

// --- Recovery mode (noisy / corrupted logs) -----------------------------------

Signatures fig3_recovery_signatures() {
  Signatures sigs = fig3_signatures();
  sigs.state_variables = {"emm_state"};
  return sigs;
}

TEST(RecoveryMode, QuarantinesBlockWithCorruptStateValue) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.enter("send_attach_complete");
  log.global("emm_state", "UE_REGISTERED");
  log.enter("recv_detach_request");
  log.global("emm_state", "UE_REGIST\x01RED");  // bit-flipped state value
  log.enter("send_detach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");

  ExtractionDiagnostics diag;
  ExtractionOptions opts;
  opts.recovery = true;
  opts.diagnostics = &diag;
  fsm::Fsm m = extract_basic(log.records(), fig3_recovery_signatures(), opts);

  // The clean attach block survives; the corrupted detach block does not.
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].conditions.count("attach_accept"), 1u);
  EXPECT_EQ(diag.blocks_total, 2u);
  EXPECT_EQ(diag.blocks_extracted, 1u);
  ASSERT_EQ(diag.quarantined.size(), 1u);
  EXPECT_EQ(diag.quarantined[0].incoming, "detach_request");
  EXPECT_NE(diag.quarantined[0].reason.find("unrecognized state value"), std::string::npos);
}

TEST(RecoveryMode, WithoutRecoveryCorruptBlockIsSimplyStateless) {
  // The detector only *acts* in recovery mode: default extraction of the
  // same log must behave exactly as before (corrupt value is not a state
  // signature, so the block contributes nothing either way here).
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.enter("recv_detach_request");
  log.global("emm_state", "GARBAGE");
  fsm::Fsm plain = extract_basic(log.records(), fig3_recovery_signatures(), {});
  ExtractionOptions opts;
  opts.recovery = true;
  fsm::Fsm recovered = extract_basic(log.records(), fig3_recovery_signatures(), opts);
  EXPECT_TRUE(plain == recovered);
}

TEST(RecoveryMode, BlockWithNoStateObservationIsDiagnosed) {
  TraceLogger log;
  log.enter("recv_attach_accept");
  log.global("emm_state", "UE_REGISTERED_INIT");
  log.enter("recv_service_reject");  // truncated: its state write was lost
  log.local("cause", 9);

  ExtractionDiagnostics diag;
  ExtractionOptions opts;
  opts.recovery = true;
  opts.diagnostics = &diag;
  extract_basic(log.records(), fig3_recovery_signatures(), opts);

  ASSERT_EQ(diag.quarantined.size(), 1u);
  EXPECT_EQ(diag.quarantined[0].incoming, "service_reject");
  EXPECT_NE(diag.quarantined[0].reason.find("no state observation"), std::string::npos);
}

TEST(RecoveryMode, PristineConformanceLogExtractsIdentically) {
  // On a clean real log, recovery mode must quarantine nothing and produce
  // the identical machine — it is a pure safety net.
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  Signatures sigs = ue_signatures(ue::StackProfile::cls());
  ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm plain = extract(trace.records(), sigs, opts);

  ExtractionDiagnostics diag;
  ExtractionOptions rec_opts = opts;
  rec_opts.recovery = true;
  rec_opts.diagnostics = &diag;
  fsm::Fsm recovered = extract(trace.records(), sigs, rec_opts);

  EXPECT_TRUE(plain == recovered);
  // A clean log has no corrupt content to quarantine (state-less blocks may
  // still be *noted*, which is why the machines must stay identical).
  for (const auto& q : diag.quarantined) {
    EXPECT_EQ(q.reason.find("unrecognized state value"), std::string::npos) << q.incoming;
  }
  EXPECT_GT(diag.blocks_total, 0u);
  EXPECT_EQ(diag.blocks_extracted + diag.quarantined.size(), diag.blocks_total);
}

TEST(RecoveryMode, ChaoticLogNeverPoisonsTheModelSilently) {
  // End to end: extract from a corrupt-regime conformance log in recovery
  // mode. Every block either contributes transitions whose states are real
  // signatures, or lands in the quarantine list.
  instrument::TraceLogger trace;
  testing::ChannelConfig cfg;
  cfg.downlink.corrupt = 0.15;
  cfg.uplink.corrupt = 0.15;
  testing::run_conformance(ue::StackProfile::cls(), trace, &cfg);

  Signatures sigs = ue_signatures(ue::StackProfile::cls());
  ExtractionDiagnostics diag;
  ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  opts.recovery = true;
  opts.diagnostics = &diag;
  fsm::Fsm m = extract(trace.records(), sigs, opts);

  EXPECT_EQ(diag.blocks_extracted + diag.quarantined.size(), diag.blocks_total);
  EXPECT_GT(m.stats().transitions, 0u);
}

}  // namespace
}  // namespace procheck::extractor
