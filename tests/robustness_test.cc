// Robustness sweeps: decoders, log parsing, and the live stacks must
// tolerate arbitrary adversarial octets without crashing or corrupting
// state (the paper's Dolev–Yao adversary can put anything on the air).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "extractor/extractor.h"
#include "instrument/source_instrumentor.h"
#include "instrument/trace_log.h"
#include "nas/messages.h"
#include "nas/security_context.h"
#include "nas/sqn.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

namespace procheck {
namespace {

class RandomBytesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytesSweep, PayloadDecoderNeverMisbehaves) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(64));
    auto msg = nas::decode_payload(junk);
    if (msg) {
      // Anything that decodes must re-encode to a decodable payload.
      auto back = nas::decode_payload(nas::encode_payload(*msg));
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, *msg);
    }
  }
}

TEST_P(RandomBytesSweep, PduDecoderNeverMisbehaves) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(64));
    auto pdu = nas::NasPdu::decode(junk);
    if (pdu) {
      auto back = nas::NasPdu::decode(pdu->encode());
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, *pdu);
    }
  }
}

TEST_P(RandomBytesSweep, UsimToleratesGarbageAutn) {
  Rng rng(GetParam());
  nas::Usim usim(0x5EC2E7);
  for (int i = 0; i < 200; ++i) {
    Bytes rand_bytes = rng.next_bytes(rng.next_below(20));
    Bytes autn = rng.next_bytes(rng.next_below(40));
    auto out = usim.authenticate(rand_bytes, autn);
    // Garbage must never authenticate (the MAC space is 64-bit).
    EXPECT_NE(out.result, nas::Usim::Result::kOk);
  }
  EXPECT_EQ(usim.highest_accepted_seq(), 0u);  // array untouched
}

TEST_P(RandomBytesSweep, LogParserToleratesGarbageText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(256));
    std::string text(junk.begin(), junk.end());
    EXPECT_NO_THROW(instrument::parse_log(text));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesSweep, ::testing::Values(1u, 2u, 3u, 42u));

class GarbagePduSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GarbagePduSweep, LiveUeSurvivesGarbageDownlink) {
  // Bombard an attached conformant UE with random PDUs: it must neither
  // crash nor lose its registration/security state.
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  auto state_before = tb.ue(conn).state();
  std::string guti_before = tb.ue(conn).guti();

  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    nas::NasPdu pdu;
    pdu.sec_hdr = static_cast<nas::SecHdr>(rng.next_below(3));
    pdu.count = static_cast<std::uint32_t>(rng.next_u64());
    pdu.mac = rng.next_u64();
    pdu.payload = rng.next_bytes(rng.next_below(48));
    tb.inject_downlink(conn, pdu);
  }
  tb.run_until_quiet(5000);

  EXPECT_EQ(tb.ue(conn).state(), state_before);
  EXPECT_EQ(tb.ue(conn).guti(), guti_before);
  EXPECT_TRUE(tb.ue(conn).security().valid);
  EXPECT_EQ(tb.ue(conn).replays_accepted(), 0);
}

TEST_P(GarbagePduSweep, LiveMmeSurvivesGarbageUplink) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  auto state_before = tb.mme().state(conn);

  Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 300; ++i) {
    nas::NasPdu pdu;
    pdu.sec_hdr = static_cast<nas::SecHdr>(rng.next_below(3));
    pdu.count = static_cast<std::uint32_t>(rng.next_u64());
    pdu.mac = rng.next_u64();
    pdu.payload = rng.next_bytes(rng.next_below(48));
    tb.inject_uplink(conn, pdu);
  }
  tb.run_until_quiet(5000);
  EXPECT_EQ(tb.mme().state(conn), state_before);
}

TEST_P(GarbagePduSweep, BitFlippedProtectedPdusMidHandshakeAreHarmless) {
  // A MITM flips one random bit in every protected PDU of a live handshake:
  // integrity protection must reject each mangled PDU without crashing,
  // corrupting keys, or advancing the USIM's SQN array.
  Rng rng(GetParam() ^ 0xB17F11F);
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);

  auto flip = [&rng](const nas::NasPdu& pdu) {
    nas::NasPdu mangled = pdu;
    if (!mangled.payload.empty()) {
      std::size_t bit = rng.next_below(mangled.payload.size() * 8);
      mangled.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    } else {
      mangled.mac ^= 1ull << rng.next_below(64);
    }
    return mangled;
  };
  tb.set_downlink_interceptor([&flip](int, const nas::NasPdu& pdu) {
    if (pdu.sec_hdr == nas::SecHdr::kPlain) return testing::AdversaryAction::pass();
    return testing::AdversaryAction::replace(flip(pdu));
  });

  tb.power_on(conn);
  tb.run_until_quiet(5000);

  // With every protected downlink mangled the attach cannot complete, but
  // nothing may break: keys stay consistent and no replay slips through.
  EXPECT_FALSE(ue::is_registered(tb.ue(conn).state()));
  EXPECT_EQ(tb.ue(conn).replays_accepted(), 0);
  auto seq_after_mangling = tb.ue(conn).usim().highest_accepted_seq();

  // Clearing the adversary must let the same UE attach cleanly afterwards —
  // proof that the mangled traffic left no residual corruption.
  tb.clear_interceptors();
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  EXPECT_TRUE(tb.ue(conn).security().valid);
  EXPECT_GE(tb.ue(conn).usim().highest_accepted_seq(), seq_after_mangling);
}

TEST_P(GarbagePduSweep, RandomDropDuplicateFuzzNeverCrashesAttach) {
  // Randomized channel fuzz over the full attach: for many derived seeds,
  // drop/duplicate faults at varying intensity must never crash the stacks,
  // corrupt an established key, or livelock the testbed.
  Rng seeds(GetParam() ^ 0xF022);
  for (int round = 0; round < 8; ++round) {
    testing::Testbed tb;
    int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
    testing::ChannelConfig cfg;
    cfg.downlink.drop = 0.05 * static_cast<double>(seeds.next_below(4));
    cfg.uplink.drop = 0.05 * static_cast<double>(seeds.next_below(4));
    cfg.downlink.duplicate = 0.05 * static_cast<double>(seeds.next_below(4));
    cfg.uplink.duplicate = 0.05 * static_cast<double>(seeds.next_below(4));
    cfg.seed = seeds.next_u64();
    tb.set_channel(cfg);

    bool ok = testing::complete_attach(tb, conn);
    EXPECT_EQ(tb.step_limit_hits(), 0u) << "livelock in round " << round;
    // A channel duplicate *is* a replay; the cls stack's modeled I6
    // deviation may accept a replayed SMC (that is ground truth, not
    // corruption). But replays must never outnumber injected duplicates.
    EXPECT_LE(static_cast<std::size_t>(tb.ue(conn).replays_accepted()),
              tb.channel()->stats().downlink.duplicated);
    if (ok) {
      EXPECT_TRUE(tb.ue(conn).security().valid);
      EXPECT_EQ(tb.mme().state(conn), mme::MmeState::kRegistered);
    } else {
      // Failure must be an explicit give-up, not a wedged procedure.
      EXPECT_FALSE(tb.ue(conn).retransmission_armed());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbagePduSweep, ::testing::Values(7u, 99u));

TEST(Robustness, SourceInstrumentorToleratesArbitraryText) {
  Rng rng(0x57A71C);
  const std::string tokens[] = {"void ", "f",  "(",  ")",  "{", "}", ";", "int x",
                                "return", "\"s\"", "//c\n", "/*", "*/", "=", "1"};
  for (int i = 0; i < 200; ++i) {
    std::string src;
    std::size_t len = rng.next_below(60);
    for (std::size_t t = 0; t < len; ++t) {
      src += tokens[rng.next_below(std::size(tokens))];
    }
    EXPECT_NO_THROW(instrument::instrument_source(src, {"g"}));
    EXPECT_NO_THROW(instrument::harvest_globals(src));
  }
}

TEST(Robustness, ExtractionFromGarbageLogIsEmptyNotCrashy) {
  Rng rng(4242);
  Bytes junk = rng.next_bytes(4096);
  std::string text(junk.begin(), junk.end());
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  fsm::Fsm m = extractor::extract(text, sigs, {});
  EXPECT_TRUE(m.transitions().empty());
}

TEST(Robustness, TruncatedRealLogStillExtractsPrefix) {
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  std::string text = trace.text();
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  fsm::Fsm full = extractor::extract(text, sigs, {});
  fsm::Fsm half = extractor::extract(text.substr(0, text.size() / 2), sigs, {});
  EXPECT_GT(half.stats().transitions, 0u);
  EXPECT_LE(half.stats().transitions, full.stats().transitions);
}

}  // namespace
}  // namespace procheck
