// Robustness sweeps: decoders, log parsing, and the live stacks must
// tolerate arbitrary adversarial octets without crashing or corrupting
// state (the paper's Dolev–Yao adversary can put anything on the air).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "extractor/extractor.h"
#include "instrument/source_instrumentor.h"
#include "instrument/trace_log.h"
#include "nas/messages.h"
#include "nas/security_context.h"
#include "nas/sqn.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

namespace procheck {
namespace {

class RandomBytesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytesSweep, PayloadDecoderNeverMisbehaves) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(64));
    auto msg = nas::decode_payload(junk);
    if (msg) {
      // Anything that decodes must re-encode to a decodable payload.
      auto back = nas::decode_payload(nas::encode_payload(*msg));
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, *msg);
    }
  }
}

TEST_P(RandomBytesSweep, PduDecoderNeverMisbehaves) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(64));
    auto pdu = nas::NasPdu::decode(junk);
    if (pdu) {
      auto back = nas::NasPdu::decode(pdu->encode());
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, *pdu);
    }
  }
}

TEST_P(RandomBytesSweep, UsimToleratesGarbageAutn) {
  Rng rng(GetParam());
  nas::Usim usim(0x5EC2E7);
  for (int i = 0; i < 200; ++i) {
    Bytes rand_bytes = rng.next_bytes(rng.next_below(20));
    Bytes autn = rng.next_bytes(rng.next_below(40));
    auto out = usim.authenticate(rand_bytes, autn);
    // Garbage must never authenticate (the MAC space is 64-bit).
    EXPECT_NE(out.result, nas::Usim::Result::kOk);
  }
  EXPECT_EQ(usim.highest_accepted_seq(), 0u);  // array untouched
}

TEST_P(RandomBytesSweep, LogParserToleratesGarbageText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(256));
    std::string text(junk.begin(), junk.end());
    EXPECT_NO_THROW(instrument::parse_log(text));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesSweep, ::testing::Values(1u, 2u, 3u, 42u));

class GarbagePduSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GarbagePduSweep, LiveUeSurvivesGarbageDownlink) {
  // Bombard an attached conformant UE with random PDUs: it must neither
  // crash nor lose its registration/security state.
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  auto state_before = tb.ue(conn).state();
  std::string guti_before = tb.ue(conn).guti();

  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    nas::NasPdu pdu;
    pdu.sec_hdr = static_cast<nas::SecHdr>(rng.next_below(3));
    pdu.count = static_cast<std::uint32_t>(rng.next_u64());
    pdu.mac = rng.next_u64();
    pdu.payload = rng.next_bytes(rng.next_below(48));
    tb.inject_downlink(conn, pdu);
  }
  tb.run_until_quiet(5000);

  EXPECT_EQ(tb.ue(conn).state(), state_before);
  EXPECT_EQ(tb.ue(conn).guti(), guti_before);
  EXPECT_TRUE(tb.ue(conn).security().valid);
  EXPECT_EQ(tb.ue(conn).replays_accepted(), 0);
}

TEST_P(GarbagePduSweep, LiveMmeSurvivesGarbageUplink) {
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  ASSERT_TRUE(testing::complete_attach(tb, conn));
  auto state_before = tb.mme().state(conn);

  Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 300; ++i) {
    nas::NasPdu pdu;
    pdu.sec_hdr = static_cast<nas::SecHdr>(rng.next_below(3));
    pdu.count = static_cast<std::uint32_t>(rng.next_u64());
    pdu.mac = rng.next_u64();
    pdu.payload = rng.next_bytes(rng.next_below(48));
    tb.inject_uplink(conn, pdu);
  }
  tb.run_until_quiet(5000);
  EXPECT_EQ(tb.mme().state(conn), state_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbagePduSweep, ::testing::Values(7u, 99u));

TEST(Robustness, SourceInstrumentorToleratesArbitraryText) {
  Rng rng(0x57A71C);
  const std::string tokens[] = {"void ", "f",  "(",  ")",  "{", "}", ";", "int x",
                                "return", "\"s\"", "//c\n", "/*", "*/", "=", "1"};
  for (int i = 0; i < 200; ++i) {
    std::string src;
    std::size_t len = rng.next_below(60);
    for (std::size_t t = 0; t < len; ++t) {
      src += tokens[rng.next_below(std::size(tokens))];
    }
    EXPECT_NO_THROW(instrument::instrument_source(src, {"g"}));
    EXPECT_NO_THROW(instrument::harvest_globals(src));
  }
}

TEST(Robustness, ExtractionFromGarbageLogIsEmptyNotCrashy) {
  Rng rng(4242);
  Bytes junk = rng.next_bytes(4096);
  std::string text(junk.begin(), junk.end());
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  fsm::Fsm m = extractor::extract(text, sigs, {});
  EXPECT_TRUE(m.transitions().empty());
}

TEST(Robustness, TruncatedRealLogStillExtractsPrefix) {
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  std::string text = trace.text();
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  fsm::Fsm full = extractor::extract(text, sigs, {});
  fsm::Fsm half = extractor::extract(text.substr(0, text.size() / 2), sigs, {});
  EXPECT_GT(half.stats().transitions, 0u);
  EXPECT_LE(half.stats().transitions, full.stats().transitions);
}

}  // namespace
}  // namespace procheck
