// MME NAS stack tests: authentication-vector generation, resynchronization,
// the T3450-style bounded-retransmission discipline (P3's attack surface),
// and uplink protection policy.
#include <gtest/gtest.h>

#include "mme/mme_nas.h"
#include "nas/crypto.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

namespace procheck::mme {
namespace {

using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using testing::Testbed;

struct Rig {
  Testbed tb;
  int conn;
  Rig() : conn(tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey)) {}
  MmeNas& mme() { return tb.mme(); }
  bool attach() { return testing::complete_attach(tb, conn); }
};

TEST(MmeStates, Names) {
  EXPECT_EQ(to_string(MmeState::kDeregistered), "MME_DEREGISTERED");
  EXPECT_EQ(to_string(MmeState::kRegistered), "MME_REGISTERED");
  EXPECT_EQ(to_string(MmeState::kCommonProcedureInitiated),
            "MME_COMMON_PROCEDURE_INITIATED");
}

TEST(MmeAttach, RespondsToAttachWithChallenge) {
  Rig rig;
  NasMessage req(MsgType::kAttachRequest);
  req.set_s("identity", testing::kTestImsi);
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  auto msg = nas::decode_payload(out[0].pdu.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kAuthenticationRequest);
  EXPECT_FALSE(msg->get_b("rand").empty());
  EXPECT_FALSE(msg->get_b("autn").empty());
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kCommonProcedureInitiated);
}

TEST(MmeAttach, UnknownIdentityTriggersIdentification) {
  Rig rig;
  NasMessage req(MsgType::kAttachRequest);
  req.set_s("identity", "guti-stale");
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  auto msg = nas::decode_payload(out[0].pdu.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kIdentityRequest);
}

TEST(MmeAttach, UnknownImsiAfterIdentificationIsRejected) {
  Rig rig;
  NasMessage attach(MsgType::kAttachRequest);
  attach.set_s("identity", "guti-stale");
  rig.mme().handle_uplink(rig.conn, nas::encode_plain(attach));
  NasMessage id(MsgType::kIdentityResponse);
  id.set_s("identity", "999999999999999");
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(id));
  ASSERT_EQ(out.size(), 1u);
  auto msg = nas::decode_payload(out[0].pdu.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kAttachReject);
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kDeregistered);
}

TEST(MmeAuth, WrongResIsRejected) {
  Rig rig;
  NasMessage attach(MsgType::kAttachRequest);
  attach.set_s("identity", testing::kTestImsi);
  rig.mme().handle_uplink(rig.conn, nas::encode_plain(attach));
  NasMessage resp(MsgType::kAuthenticationResponse);
  resp.set_u("res", 0xBAD);
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(resp));
  ASSERT_EQ(out.size(), 1u);
  auto msg = nas::decode_payload(out[0].pdu.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kAuthenticationReject);
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kDeregistered);
}

TEST(MmeAuth, SqnAdvancesAcrossAttaches) {
  // HSS-level SQN state persists across sessions — the property that keeps
  // old captured challenges valid for P1.
  Rig rig;
  ASSERT_TRUE(rig.attach());
  rig.tb.ue_detach(rig.conn);
  rig.tb.run_until_quiet();
  rig.tb.power_on(rig.conn);
  rig.tb.run_until_quiet();
  ASSERT_TRUE(ue::is_registered(rig.tb.ue(rig.conn).state()));
  // The USIM saw two distinct, increasing SQNs.
  EXPECT_EQ(rig.tb.ue(rig.conn).usim().highest_accepted_seq(), 2u);
}

TEST(MmeAuth, ResynchronizationRecovers) {
  Rig rig;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(rig.attach());
    rig.tb.ue_detach(rig.conn);
    rig.tb.run_until_quiet();
  }
  rig.mme().debug_set_sqn(testing::kTestImsi, 0, 0);
  rig.tb.power_on(rig.conn);
  rig.tb.run_until_quiet();
  EXPECT_TRUE(ue::is_registered(rig.tb.ue(rig.conn).state()));
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kRegistered);
}

// --- Uplink protection policy ------------------------------------------------

TEST(MmeUplink, RejectsProtectedWithBadMac) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  NasPdu bogus;
  bogus.sec_hdr = nas::SecHdr::kIntegrityCiphered;
  bogus.count = 50;
  bogus.mac = 0xBAD;
  bogus.payload = {1, 2, 3};
  int before = rig.mme().protected_discards();
  EXPECT_TRUE(rig.mme().handle_uplink(rig.conn, bogus).empty());
  EXPECT_EQ(rig.mme().protected_discards(), before + 1);
}

TEST(MmeUplink, RejectsReplayedUplink) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  // Replay the UE's protected attach_complete.
  const auto& captures = rig.tb.uplink_captures();
  const NasPdu* protected_ul = nullptr;
  for (const auto& c : captures) {
    if (c.pdu.sec_hdr == nas::SecHdr::kIntegrityCiphered) protected_ul = &c.pdu;
  }
  ASSERT_NE(protected_ul, nullptr);
  auto state_before = rig.mme().state(rig.conn);
  EXPECT_TRUE(rig.mme().handle_uplink(rig.conn, *protected_ul).empty());
  EXPECT_EQ(rig.mme().state(rig.conn), state_before);
}

TEST(MmeUplink, RejectsUnexpectedPlainMessage) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  // A plain security_mode_complete is not acceptable.
  NasMessage msg(MsgType::kSecurityModeComplete);
  EXPECT_TRUE(rig.mme().handle_uplink(rig.conn, nas::encode_plain(msg)).empty());
}

TEST(MmeUplink, FabricatedPlainDetachKicksUeOff) {
  // The stealthy kicking-off prior attack surface: the MME accepts a plain
  // detach_request.
  Rig rig;
  ASSERT_TRUE(rig.attach());
  NasMessage req(MsgType::kDetachRequest);
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kDeregistered);
}

// --- Timer discipline (P3 surface) ----------------------------------------------

TEST(MmeTimers, GutiReallocationRetransmitsOnExpiry) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  // Swallow the command so the timer expires.
  rig.tb.set_downlink_interceptor(
      [](int, const NasPdu&) { return testing::AdversaryAction::drop(); });
  rig.tb.mme_guti_reallocation(rig.conn);
  rig.tb.run_until_quiet();
  ASSERT_TRUE(rig.mme().has_pending_procedure(rig.conn));
  std::size_t sent_before = rig.tb.downlink_captures().size();
  rig.tb.tick(MmeNas::kTimerPeriod);
  EXPECT_GT(rig.tb.downlink_captures().size(), sent_before);  // retransmission
  EXPECT_TRUE(rig.mme().has_pending_procedure(rig.conn));
}

TEST(MmeTimers, ProcedureAbortsAfterMaxRetransmissions) {
  // P3's core: dropping kMaxRetransmissions + 1 copies aborts the procedure
  // and the old GUTI stays in use.
  Rig rig;
  ASSERT_TRUE(rig.attach());
  std::string guti_before = rig.mme().guti(rig.conn);
  rig.tb.set_downlink_interceptor(
      [](int, const NasPdu&) { return testing::AdversaryAction::drop(); });
  rig.tb.mme_guti_reallocation(rig.conn);
  rig.tb.run_until_quiet();
  rig.tb.tick(MmeNas::kTimerPeriod * (MmeNas::kMaxRetransmissions + 1));
  EXPECT_FALSE(rig.mme().has_pending_procedure(rig.conn));
  EXPECT_EQ(rig.mme().procedures_aborted(), 1);
  EXPECT_EQ(rig.mme().guti(rig.conn), guti_before);  // rotation never happened
}

TEST(MmeTimers, RetransmissionUsesFreshCount) {
  // A retransmission must not look like a replay to a conformant receiver.
  Rig rig;
  ASSERT_TRUE(rig.attach());
  bool first = true;
  rig.tb.set_downlink_interceptor([&first](int, const NasPdu&) {
    if (first) {
      first = false;
      return testing::AdversaryAction::drop();
    }
    return testing::AdversaryAction::pass();
  });
  std::string guti_before = rig.tb.ue(rig.conn).guti();
  rig.tb.mme_guti_reallocation(rig.conn);
  rig.tb.run_until_quiet();
  rig.tb.tick(MmeNas::kTimerPeriod);
  // The retransmitted command was accepted (no replay discard).
  EXPECT_NE(rig.tb.ue(rig.conn).guti(), guti_before);
  EXPECT_EQ(rig.tb.ue(rig.conn).replays_accepted(), 0);
  EXPECT_FALSE(rig.mme().has_pending_procedure(rig.conn));
}

TEST(MmeTimers, ConfigurationUpdateSameDiscipline) {
  // The paper's 5G impact note: the configuration-update procedure has the
  // same ×4-retransmission bound.
  Rig rig;
  ASSERT_TRUE(rig.attach());
  rig.tb.set_downlink_interceptor(
      [](int, const NasPdu&) { return testing::AdversaryAction::drop(); });
  rig.tb.mme_configuration_update(rig.conn);
  rig.tb.run_until_quiet();
  rig.tb.tick(MmeNas::kTimerPeriod * (MmeNas::kMaxRetransmissions + 1));
  EXPECT_EQ(rig.mme().procedures_aborted(), 1);
}

TEST(MmeTimers, CompletionStopsTheTimer) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  rig.tb.mme_guti_reallocation(rig.conn);
  rig.tb.run_until_quiet();
  EXPECT_FALSE(rig.mme().has_pending_procedure(rig.conn));
  // Ticks after completion do nothing.
  std::size_t sent = rig.tb.downlink_captures().size();
  rig.tb.tick(MmeNas::kTimerPeriod * 3);
  EXPECT_EQ(rig.tb.downlink_captures().size(), sent);
  EXPECT_EQ(rig.mme().procedures_aborted(), 0);
}

TEST(MmeProcedures, GutiAdoptedOnlyOnCompletion) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  std::string before = rig.mme().guti(rig.conn);
  rig.tb.mme_guti_reallocation(rig.conn);
  rig.tb.run_until_quiet();
  std::string after = rig.mme().guti(rig.conn);
  EXPECT_NE(after, before);
  EXPECT_EQ(after, rig.tb.ue(rig.conn).guti());  // both sides agree
}

TEST(MmeProcedures, TauAcceptedWhenRegistered) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  rig.tb.ue_tau(rig.conn);
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.mme().state(rig.conn), MmeState::kRegistered);
  EXPECT_TRUE(ue::is_registered(rig.tb.ue(rig.conn).state()));
}

TEST(MmeProcedures, ServiceRejectWithoutContext) {
  Rig rig;
  NasMessage req(MsgType::kServiceRequest);
  req.set_s("identity", "guti-unknown");
  auto out = rig.mme().handle_uplink(rig.conn, nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  auto msg = nas::decode_payload(out[0].pdu.payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kServiceReject);
}

TEST(MmeProcedures, StartsRequireRegisteredState) {
  Rig rig;
  EXPECT_TRUE(rig.mme().start_guti_reallocation(rig.conn).empty());
  EXPECT_TRUE(rig.mme().start_detach(rig.conn).empty());
  EXPECT_TRUE(rig.mme().start_configuration_update(rig.conn).empty());
}

}  // namespace
}  // namespace procheck::mme
