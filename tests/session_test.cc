// Multi-session SUL server suite (DESIGN.md §13): session isolation,
// admission control, PSK authentication with anti-replay, per-session
// quotas, graceful drain, idle reaping, and the per-session stats registry.
//
// The load-bearing invariants, end to end:
//   * N concurrent learners against one server — clean or through lossless
//     chaos — each produce a result byte-identical to a sequential
//     in-process run (session isolation + deterministic SUL + replay);
//   * every refusal (over cap, draining, bad PSK, legacy client, tripped
//     quota, idle reap) is a *structured* frame the client degrades on,
//     with zero effect on admitted sibling sessions;
//   * killing one session at every message leaves its siblings' results
//     byte-identical — crash isolation is per session, not per server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_conformance.h"
#include "net/remote_sul.h"
#include "net/socket.h"
#include "net/sul_server.h"
#include "net/wire.h"
#include "ue/profile.h"

namespace procheck::net {
namespace {

RemoteSulOptions client_options(std::uint16_t port) {
  RemoteSulOptions o;
  o.port = port;
  o.call_deadline_seconds = 2.0;
  o.connect_timeout_seconds = 0.25;
  o.backoff_base_seconds = 0.002;
  o.backoff_max_seconds = 0.02;
  o.attempts_per_query = 4;
  o.breaker_failure_threshold = 4;
  o.breaker_open_seconds = 0.1;
  return o;
}

learner::LearnOptions quick_learn_options() {
  learner::LearnOptions o;
  o.eq_test_words = 40;
  o.eq_test_max_length = 5;
  o.seed = 0xBEEF;
  return o;
}

std::string fsm_text(const learner::LearnResult& result) {
  return result.machine.to_fsm().to_dot("learned");
}

/// Reference result every remote learner must reproduce byte-for-byte.
std::string in_process_reference() {
  learner::UeSul sul(ue::StackProfile::cls());
  return fsm_text(learner::learn_mealy(sul, quick_learn_options()));
}

// Raw-socket helpers for handshake-level tests (the client class would
// helpfully retry past exactly the refusals these tests pin).

bool send_raw(TcpConn& conn, const Frame& frame) {
  return conn.send_all(encode_frame(frame), 1.0);
}

std::optional<Frame> read_raw(TcpConn& conn, FrameReader& reader, double budget = 2.0) {
  const auto start = std::chrono::steady_clock::now();
  Bytes chunk;
  bool eof = false;
  for (;;) {
    Decoded d = reader.next();
    if (d.status == DecodeStatus::kFrame) return d.frame;
    if (d.status == DecodeStatus::kBadFrame) return std::nullopt;
    if (eof) return std::nullopt;  // peer closed and the buffer is drained
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() >
        budget) {
      return std::nullopt;
    }
    chunk.clear();
    auto status = conn.recv_some(chunk, 4096, 0.05);
    if (status == TcpConn::RecvStatus::kData) {
      reader.feed(chunk);
    } else if (status != TcpConn::RecvStatus::kTimeout) {
      eof = true;
    }
  }
}

Frame hello_frame() {
  Frame f;
  f.type = FrameType::kHello;
  f.epoch = 1;
  f.seq = 1;
  f.payload = "raw-test-client";
  return f;
}

// --- Concurrent-session byte-identity ---------------------------------------

TEST(Session, FourConcurrentLearnersMatchSequentialInProcess) {
  const std::string reference = in_process_reference();
  SulServerOptions sopts;
  sopts.max_sessions = 4;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 4;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RemoteUeSul remote(client_options(server.port()));
      results[static_cast<std::size_t>(i)] =
          fsm_text(learner::learn_mealy(remote, quick_learn_options()));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], reference) << "learner " << i;
  }

  server.stop();
  EXPECT_EQ(server.stats().sessions_admitted, kClients);
  EXPECT_EQ(server.stats().rejected_busy, 0);
  // Every session worked and closed orderly; the registry shows all of them.
  std::vector<SessionStats> sessions = server.session_stats();
  ASSERT_EQ(sessions.size(), static_cast<std::size_t>(kClients));
  for (const SessionStats& s : sessions) {
    EXPECT_GT(s.steps, 0) << "session " << s.id;
    EXPECT_GT(s.bytes_in, 0) << "session " << s.id;
    EXPECT_FALSE(s.close_reason.empty()) << "session " << s.id;
  }
}

TEST(Session, FourConcurrentLearnersThroughLosslessChaosMatch) {
  const std::string reference = in_process_reference();
  SulServerOptions sopts;
  sopts.max_sessions = 8;  // headroom for reconnect overlap
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.delay = 0.05;
  popts.faults.fragment = 0.10;
  popts.faults.reorder = 0.05;  // lossless: detected, recovered by replay
  ChaosProxy proxy(popts);
  ASSERT_TRUE(proxy.start());

  constexpr int kClients = 4;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RemoteUeSul remote(client_options(proxy.port()));
      results[static_cast<std::size_t>(i)] =
          fsm_text(learner::learn_mealy(remote, quick_learn_options()));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], reference) << "learner " << i;
  }
  proxy.stop();
  server.stop();
  EXPECT_GT(proxy.stats().faults(), 0) << "chaos profile never fired";
}

// --- Admission control -------------------------------------------------------

TEST(Session, OverCapConnectionGetsStructuredBusyReject) {
  SulServerOptions sopts;
  sopts.max_sessions = 1;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteUeSul admitted(client_options(server.port()));
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request"};
  const std::vector<std::string> expect = local.run(word);
  ASSERT_EQ(admitted.run(word), expect);  // session 0 is live and holds the cap

  RemoteUeSul rejected(client_options(server.port()));
  rejected.reset();
  EXPECT_EQ(rejected.step("power_on"), learner::kSulUnavailable);
  EXPECT_EQ(rejected.last_close_reason(), kReasonServerBusy);
  EXPECT_GT(rejected.stats().busy_rejects, 0);
  EXPECT_EQ(rejected.unavailable_reason(), std::string("server said: ") + kReasonServerBusy);

  // The admitted session is untouched by the shedding next door.
  EXPECT_EQ(admitted.run(word), expect);

  server.stop();
  EXPECT_GT(server.stats().rejected_busy, 0);
  EXPECT_EQ(server.stats().sessions_admitted, 1);
}

// --- PSK authentication ------------------------------------------------------

TEST(Session, PskHandshakeAuthenticatesAndLearns) {
  SulServerOptions sopts;
  sopts.psk = "open-sesame";
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteSulOptions copts = client_options(server.port());
  copts.psk = "open-sesame";
  RemoteUeSul remote(copts);
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command"};
  EXPECT_EQ(remote.run(word), local.run(word));
  EXPECT_GT(remote.stats().auth_challenges, 0);

  server.stop();
  EXPECT_EQ(server.stats().sessions_authenticated, 1);
  EXPECT_EQ(server.stats().auth_failures, 0);
}

TEST(Session, WrongPskGetsStructuredRejectBeforeAnySulState) {
  SulServerOptions sopts;
  sopts.psk = "correct-key";
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteSulOptions copts = client_options(server.port());
  copts.psk = "wrong-key";
  RemoteUeSul remote(copts);
  remote.reset();
  EXPECT_EQ(remote.step("power_on"), learner::kSulUnavailable);
  EXPECT_EQ(remote.last_close_reason(), kReasonAuthFailed);

  // The structured reason propagates into the inconclusive learning result.
  learner::LearnResult result = learner::learn_mealy(remote, quick_learn_options());
  EXPECT_TRUE(result.inconclusive);
  EXPECT_NE(result.note.find(kReasonAuthFailed), std::string::npos) << result.note;

  server.stop();
  EXPECT_GT(server.stats().auth_failures, 0);
  EXPECT_EQ(server.stats().sessions_authenticated, 0);
  // Auth failed before any SUL existed: zero application requests processed.
  EXPECT_EQ(server.stats().requests, 0);
}

TEST(Session, ReplayedAuthResponseIsRejected) {
  SulServerOptions sopts;
  sopts.psk = "replay-me";
  sopts.nonce_seed = 42;  // pinned stream; nonces still differ per connection
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  // Legitimate handshake: capture the MAC an eavesdropper would see.
  std::string nonce1;
  std::string captured_mac;
  {
    auto conn = TcpConn::connect("127.0.0.1", server.port(), 1.0);
    ASSERT_TRUE(conn.has_value());
    FrameReader reader;
    ASSERT_TRUE(send_raw(*conn, hello_frame()));
    auto challenge = read_raw(*conn, reader);
    ASSERT_TRUE(challenge.has_value());
    ASSERT_EQ(challenge->type, FrameType::kChallenge);
    nonce1 = challenge->payload;
    captured_mac = auth_mac("replay-me", nonce1, 1);
    Frame auth;
    auth.type = FrameType::kAuthResponse;
    auth.epoch = 1;
    auth.seq = 2;
    auth.payload = captured_mac;
    ASSERT_TRUE(send_raw(*conn, auth));
    auto ack = read_raw(*conn, reader);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, FrameType::kHelloAck);
  }

  // Replay: a new connection gets a *fresh* nonce, so the captured MAC is
  // bound to a challenge that will never be issued again.
  {
    auto conn = TcpConn::connect("127.0.0.1", server.port(), 1.0);
    ASSERT_TRUE(conn.has_value());
    FrameReader reader;
    ASSERT_TRUE(send_raw(*conn, hello_frame()));
    auto challenge = read_raw(*conn, reader);
    ASSERT_TRUE(challenge.has_value());
    ASSERT_EQ(challenge->type, FrameType::kChallenge);
    EXPECT_NE(challenge->payload, nonce1) << "nonce reuse across connections";
    Frame auth;
    auth.type = FrameType::kAuthResponse;
    auth.epoch = 1;
    auth.seq = 2;
    auth.payload = captured_mac;  // verbatim replay
    ASSERT_TRUE(send_raw(*conn, auth));
    auto close = read_raw(*conn, reader);
    ASSERT_TRUE(close.has_value());
    EXPECT_EQ(close->type, FrameType::kClose);
    EXPECT_EQ(close->payload, kReasonAuthFailed);
  }

  server.stop();
  EXPECT_EQ(server.stats().sessions_authenticated, 1);
  EXPECT_EQ(server.stats().auth_failures, 1);
}

TEST(Session, StartRefusesNonLoopbackBindWithoutPsk) {
  SulServerOptions sopts;
  sopts.bind_host = "0.0.0.0";
  SulServer server(ue::StackProfile::cls(), sopts);
  EXPECT_FALSE(server.start());
  EXPECT_NE(server.start_error().find("PSK"), std::string::npos) << server.start_error();
}

// --- Version gating ----------------------------------------------------------

TEST(Session, LegacyV1HelloGetsStructuredUpgradeClose) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());

  auto conn = TcpConn::connect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  Frame hello = hello_frame();
  hello.version = 1;  // a pre-auth client
  FrameReader reader;
  ASSERT_TRUE(send_raw(*conn, hello));
  auto close = read_raw(*conn, reader);
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(close->type, FrameType::kClose);
  EXPECT_NE(close->payload.find("upgrade_required"), std::string::npos) << close->payload;
  // The server closed the socket — not a half-open connection.
  Bytes chunk;
  EXPECT_EQ(conn->recv_some(chunk, 64, 1.0), TcpConn::RecvStatus::kEof);

  server.stop();
  EXPECT_EQ(server.stats().upgrade_rejects, 1);
}

// --- Batched word protocol at the session layer (wire v3) --------------------

// Satellite (a): the RemoteUeSul client dedupes before sending, but the wire
// contract is that a *server* also tolerates duplicate words inside one
// kQueryBatch — every duplicate position is answered, identically, and the
// duplicates execute as prefix continuations (zero extra resets).
TEST(Session, RawBatchWithDuplicateWordsIsTolerated) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  learner::UeSul local(ue::StackProfile::cls());

  auto conn = TcpConn::connect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  FrameReader reader;
  Frame hello = hello_frame();
  hello.payload = with_batch_token(hello.payload, 4);
  ASSERT_TRUE(send_raw(*conn, hello));
  auto ack = read_raw(*conn, reader);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, FrameType::kHelloAck);
  EXPECT_EQ(parse_batch_token(ack->payload), 4);

  const std::vector<std::vector<std::string>> words = {
      {"power_on"},
      {"power_on"},
      {"power_on", "authentication_request"},
  };
  Frame batch;
  batch.type = FrameType::kQueryBatch;
  batch.epoch = 1;
  batch.seq = 2;
  batch.payload = encode_batch(words);
  ASSERT_TRUE(send_raw(*conn, batch));
  auto reply = read_raw(*conn, reader);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kBatchAck);
  auto items = decode_batch_ack(reply->payload, words.size());
  ASSERT_TRUE(items.has_value());
  ASSERT_EQ(items->size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_TRUE((*items)[i].ok) << "position " << i << ": " << (*items)[i].error;
    EXPECT_EQ((*items)[i].outputs, local.run(words[i])) << "position " << i;
  }

  server.stop();
  EXPECT_EQ(server.stats().batched_words, 3);
  EXPECT_EQ(server.stats().resets, 1) << "duplicates and extensions continue one chain";
  EXPECT_EQ(server.stats().prefix_hits, 2);
  EXPECT_EQ(server.stats().batch_refusals, 0);
}

// A malformed or over-cap batch is refused with a *structured* kError whose
// reason names the problem — and the session survives it untouched.
TEST(Session, OversizedAndMalformedBatchesGetStructuredRefusal) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  learner::UeSul local(ue::StackProfile::cls());

  auto conn = TcpConn::connect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  FrameReader reader;
  Frame hello = hello_frame();
  hello.payload = with_batch_token(hello.payload, 2);  // tiny negotiated cap
  ASSERT_TRUE(send_raw(*conn, hello));
  auto ack = read_raw(*conn, reader);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, FrameType::kHelloAck);
  ASSERT_EQ(parse_batch_token(ack->payload), 2);

  // Three words through a two-word grant: refused as too large.
  Frame over;
  over.type = FrameType::kQueryBatch;
  over.epoch = 1;
  over.seq = 2;
  over.payload = "power_on;paging;detach_request";
  ASSERT_TRUE(send_raw(*conn, over));
  auto refusal = read_raw(*conn, reader);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->type, FrameType::kError);
  EXPECT_EQ(refusal->payload, kReasonBatchTooLarge);

  // A batch whose words don't decode: refused as malformed.
  Frame bad;
  bad.type = FrameType::kQueryBatch;
  bad.epoch = 1;
  bad.seq = 3;
  bad.payload = "power_on;not a symbol";
  ASSERT_TRUE(send_raw(*conn, bad));
  refusal = read_raw(*conn, reader);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->type, FrameType::kError);
  EXPECT_EQ(refusal->payload, kReasonBadBatch);

  // A word query with an illegal symbol: refused, same contract.
  Frame bad_word;
  bad_word.type = FrameType::kQueryWord;
  bad_word.epoch = 1;
  bad_word.seq = 4;
  bad_word.payload = "power on";
  ASSERT_TRUE(send_raw(*conn, bad_word));
  refusal = read_raw(*conn, reader);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->type, FrameType::kError);
  EXPECT_EQ(refusal->payload, kReasonBadWord);

  // The session survived all three refusals: a real query still answers.
  Frame word;
  word.type = FrameType::kQueryWord;
  word.epoch = 1;
  word.seq = 5;
  word.payload = encode_word({"power_on", "authentication_request"});
  ASSERT_TRUE(send_raw(*conn, word));
  auto answer = read_raw(*conn, reader);
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(answer->type, FrameType::kWordAck);
  EXPECT_EQ(decode_word(answer->payload), local.run({"power_on", "authentication_request"}));

  server.stop();
  EXPECT_EQ(server.stats().batch_refusals, 3);
  EXPECT_EQ(server.stats().word_queries, 1) << "refused requests ran no SUL work";
}

// Satellite (b): the per-session registry and the rendered stats table carry
// the batch counters an operator needs to see amortization working.
TEST(Session, BatchCountersSurfaceInRegistryAndRender) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  {
    RemoteUeSul remote(client_options(server.port()));
    remote.run({"power_on"});  // one kQueryWord
    remote.query_batch({{"power_on"},
                        {"power_on", "authentication_request"},
                        {"paging"}});  // one kQueryBatch, three words
  }  // destructor sends kBye
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.stop();

  std::vector<SessionStats> sessions = server.session_stats();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].word_queries, 1);
  EXPECT_EQ(sessions[0].batch_queries, 1);
  EXPECT_EQ(sessions[0].batched_words, 3);
  EXPECT_GT(sessions[0].prefix_hits, 0);

  const std::string table = server.render_stats();
  EXPECT_NE(table.find("words:"), std::string::npos) << table;
  EXPECT_NE(table.find("1 batches (3 words)"), std::string::npos) << table;
}

// --- Per-session quotas ------------------------------------------------------

TEST(Session, QueryQuotaTripsWithStructuredClose) {
  SulServerOptions sopts;
  sopts.max_session_queries = 4;  // reset + 3 steps per session
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteUeSul remote(client_options(server.port()));
  remote.reset();
  // Word longer than the quota: once replaying reset + prefix alone exceeds
  // the per-session budget, every fresh session trips too and the client
  // degrades to the structured unavailable symbol.
  std::string last;
  for (int i = 0; i < 8; ++i) last = remote.step("authentication_request");
  EXPECT_EQ(last, learner::kSulUnavailable);
  EXPECT_EQ(remote.last_close_reason(), kReasonQuotaQueries);

  server.stop();
  EXPECT_GT(server.stats().quota_trips, 0);
}

TEST(Session, ByteQuotaTripsWithStructuredClose) {
  SulServerOptions sopts;
  sopts.max_session_bytes = 80;  // roughly the hello + one request
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteUeSul remote(client_options(server.port()));
  remote.reset();
  std::string last;
  for (int i = 0; i < 6; ++i) last = remote.step("authentication_request");
  EXPECT_EQ(last, learner::kSulUnavailable);
  EXPECT_EQ(remote.last_close_reason(), kReasonQuotaBytes);

  server.stop();
  EXPECT_GT(server.stats().quota_trips, 0);
}

// --- Graceful drain ----------------------------------------------------------

TEST(Session, DrainFinishesInFlightWordThenClosesAndShedsNewcomers) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());

  learner::UeSul local(ue::StackProfile::cls());
  learner::UeSul local2(ue::StackProfile::cls());
  RemoteUeSul inflight(client_options(server.port()));
  inflight.reset();
  local.reset();
  ASSERT_EQ(inflight.step("power_on"), local.step("power_on"));

  server.drain();
  EXPECT_TRUE(server.draining());

  // The in-flight word finishes under drain — same answers as in-process.
  EXPECT_EQ(inflight.step("authentication_request"), local.step("authentication_request"));
  EXPECT_EQ(inflight.step("security_mode_command"), local.step("security_mode_command"));

  // A newcomer is shed with a structured "draining" reject.
  RemoteUeSul newcomer(client_options(server.port()));
  newcomer.reset();
  EXPECT_EQ(newcomer.step("power_on"), learner::kSulUnavailable);
  EXPECT_EQ(newcomer.last_close_reason(), kReasonDraining);

  // The next word boundary closes the in-flight session with kClose(drained),
  // and its reconnect attempts are shed too (fresh symbol: no cached answer).
  inflight.reset();
  EXPECT_EQ(inflight.step("identity_request"), learner::kSulUnavailable);

  server.stop();
  EXPECT_GT(server.stats().drained_closes, 0);
  EXPECT_GT(server.stats().rejected_draining, 0);
}

// --- Idle reaping ------------------------------------------------------------

TEST(Session, IdleSessionIsReapedAndClientRecovers) {
  SulServerOptions sopts;
  sopts.idle_timeout_seconds = 0.2;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteUeSul remote(client_options(server.port()));
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request"};
  const std::vector<std::string> expect = local.run(word);
  ASSERT_EQ(remote.run(word), expect);

  std::this_thread::sleep_for(std::chrono::milliseconds(600));  // go quiet

  // The quiet session was reaped with a structured reason; the next query
  // transparently reconnects into a fresh session and still agrees.
  EXPECT_EQ(remote.run(word), expect);
  server.stop();
  EXPECT_EQ(server.stats().reaped_idle, 1);
  std::vector<SessionStats> sessions = server.session_stats();
  ASSERT_GE(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].close_reason, kReasonIdleTimeout);
}

TEST(Session, HeartbeatKeepsIdleSessionAlive) {
  SulServerOptions sopts;
  sopts.idle_timeout_seconds = 0.3;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  RemoteSulOptions copts = client_options(server.port());
  copts.heartbeat_seconds = 0.05;  // well under the reap threshold
  RemoteUeSul remote(copts);
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on"};
  ASSERT_EQ(remote.run(word), local.run(word));

  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  server.stop();
  EXPECT_EQ(server.stats().reaped_idle, 0) << "pings must count as activity";
  EXPECT_GT(server.stats().pings, 0);
  EXPECT_EQ(remote.stats().reconnects, 0);
}

// --- Cross-session crash isolation ------------------------------------------

// Satellite: kill one session at every message; siblings must stay
// byte-identical to the clean run. The victim recovers by replay, so *its*
// result must match too — a strictly stronger claim than survival.
TEST(Session, KillOneSessionAtEveryMessageSparesSiblings) {
  const ue::StackProfile profile = ue::StackProfile::cls();

  std::string reference;
  long total_requests = 0;
  {
    SulServer server(profile);
    ASSERT_TRUE(server.start());
    RemoteUeSul remote(client_options(server.port()));
    reference = run_remote_conformance(profile, remote).render();
    server.stop();
    total_requests = server.stats().requests;
  }
  ASSERT_GT(total_requests, 0);

  for (long k = 1; k <= total_requests; ++k) {
    SulServerOptions sopts;
    sopts.max_sessions = 4;
    sopts.kill_session = 0;  // only the victim's first session is in scope
    sopts.kill_after_requests = k;
    sopts.kill_before_reply = (k % 2) == 0;
    SulServer server(profile, sopts);
    ASSERT_TRUE(server.start());

    // The victim connects first so it deterministically owns accept index 0.
    RemoteUeSul victim(client_options(server.port()));
    victim.reset();
    ASSERT_NE(victim.step("power_on"), learner::kSulUnavailable);

    std::string survivor_render;
    std::thread survivor_thread([&] {
      RemoteUeSul survivor(client_options(server.port()));
      survivor_render = run_remote_conformance(profile, survivor).render();
    });
    std::string victim_render = run_remote_conformance(profile, victim).render();
    survivor_thread.join();

    EXPECT_EQ(survivor_render, reference) << "sibling diverged at kill point " << k;
    EXPECT_EQ(victim_render, reference) << "victim failed to recover at kill point " << k;
    server.stop();
    EXPECT_EQ(server.stats().kills, 1) << "kill point " << k << " never fired";
  }
}

// --- Stats rendering ---------------------------------------------------------

TEST(Session, RenderStatsListsEverySessionWithCloseReason) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  {
    RemoteUeSul remote(client_options(server.port()));
    remote.run({"power_on"});
  }  // destructor sends kBye
  // The bye races the destructor's return; give the server one poll to log it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.stop();

  const std::string table = server.render_stats();
  EXPECT_NE(table.find("close_reason"), std::string::npos) << table;
  EXPECT_NE(table.find("bye"), std::string::npos) << table;
  EXPECT_NE(table.find("1 admitted"), std::string::npos) << table;
}

// --- TSan-focused concurrency tests ------------------------------------------
// `ctest -L tsan` (the tsan preset) runs these under ThreadSanitizer:
// concurrent sessions over the shared stats registry, drain racing live
// queries, and the stats snapshot racing everything.

TEST(SessionTsan, ConcurrentSessionsAndStatsSnapshotsAreClean) {
  SulServerOptions sopts;
  sopts.max_sessions = 3;
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command", "attach_accept"};
  const std::vector<std::string> expect = local.run(word);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)server.stats();
      (void)server.session_stats();
      (void)server.render_stats();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      RemoteUeSul remote(client_options(server.port()));
      for (int round = 0; round < 10; ++round) {
        EXPECT_EQ(remote.run(word), expect);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  done.store(true, std::memory_order_release);
  poller.join();
  server.stop();
}

TEST(SessionTsan, DrainRacesLiveSessionsCleanly) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  std::thread client([&] {
    RemoteUeSul remote(client_options(server.port()));
    remote.reset();
    for (int i = 0; i < 50; ++i) {
      if (remote.step("authentication_request") == learner::kSulUnavailable) break;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.drain();
  client.join();
  server.stop();
}

}  // namespace
}  // namespace procheck::net
