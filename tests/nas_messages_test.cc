#include <gtest/gtest.h>

#include "nas/messages.h"

namespace procheck::nas {
namespace {

TEST(StandardNames, RoundTripAllTypes) {
  for (int i = 0; i <= static_cast<int>(MsgType::kConfigurationUpdateComplete); ++i) {
    auto type = static_cast<MsgType>(i);
    std::string_view name = standard_name(type);
    EXPECT_NE(name, "unknown") << i;
    auto back = msg_type_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, type);
  }
}

TEST(StandardNames, UnknownNameRejected) {
  EXPECT_FALSE(msg_type_from_name("not_a_message").has_value());
  EXPECT_FALSE(msg_type_from_name("").has_value());
}

TEST(StandardNames, PaperExamples) {
  // The names the paper's extractor matches (§IV-A).
  EXPECT_EQ(standard_name(MsgType::kAttachAccept), "attach_accept");
  EXPECT_EQ(standard_name(MsgType::kAuthenticationRequest), "authentication_request");
  EXPECT_EQ(standard_name(MsgType::kSecurityModeCommand), "security_mode_command");
  EXPECT_EQ(standard_name(MsgType::kGutiReallocationCommand), "guti_reallocation_command");
}

TEST(EnumStrings, SecHdrAndCause) {
  EXPECT_EQ(to_string(SecHdr::kPlain), "plain_nas");
  EXPECT_EQ(to_string(SecHdr::kIntegrity), "integrity_protected");
  EXPECT_EQ(to_string(SecHdr::kIntegrityCiphered), "integrity_protected_ciphered");
  EXPECT_EQ(to_string(EmmCause::kMacFailure), "mac_failure");
  EXPECT_EQ(to_string(EmmCause::kSynchFailure), "synch_failure");
}

TEST(NasMessage, FieldAccessors) {
  NasMessage m(MsgType::kAttachRequest);
  EXPECT_FALSE(m.has("identity"));
  EXPECT_EQ(m.get_u("missing", 7), 7u);
  EXPECT_EQ(m.get_s("missing", "dflt"), "dflt");
  EXPECT_TRUE(m.get_b("missing").empty());

  m.set_u("count", 3).set_s("identity", "imsi-1").set_b("rand", {1, 2});
  EXPECT_TRUE(m.has("count"));
  EXPECT_TRUE(m.has("identity"));
  EXPECT_TRUE(m.has("rand"));
  EXPECT_EQ(m.get_u("count"), 3u);
  EXPECT_EQ(m.get_s("identity"), "imsi-1");
  EXPECT_EQ(m.get_b("rand"), (Bytes{1, 2}));
}

class PayloadRoundTrip : public ::testing::TestWithParam<MsgType> {};

TEST_P(PayloadRoundTrip, EncodeDecode) {
  NasMessage m(GetParam());
  m.set_u("eia", 1).set_u("count", 42);
  m.set_s("identity", "001010123456789").set_s("cause", "congestion");
  m.set_b("rand", {0xAA, 0xBB, 0xCC});
  m.set_b("autn", {});
  Bytes wire = encode_payload(m);
  auto back = decode_payload(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PayloadRoundTrip,
                         ::testing::Values(MsgType::kAttachRequest, MsgType::kAttachAccept,
                                           MsgType::kAuthenticationRequest,
                                           MsgType::kAuthenticationFailure,
                                           MsgType::kSecurityModeCommand,
                                           MsgType::kIdentityResponse,
                                           MsgType::kGutiReallocationCommand,
                                           MsgType::kDetachRequest, MsgType::kPaging,
                                           MsgType::kTauReject, MsgType::kServiceRequest,
                                           MsgType::kConfigurationUpdateCommand));

TEST(PayloadCodec, EmptyMessage) {
  NasMessage m(MsgType::kDetachAccept);
  auto back = decode_payload(encode_payload(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(PayloadCodec, RejectsUnknownType) {
  Bytes wire = encode_payload(NasMessage(MsgType::kPaging));
  wire[0] = 0xFF;
  EXPECT_FALSE(decode_payload(wire).has_value());
}

TEST(PayloadCodec, RejectsTruncation) {
  NasMessage m(MsgType::kAttachAccept);
  m.set_s("guti", "guti-1");
  Bytes wire = encode_payload(m);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_payload(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(PayloadCodec, RejectsTrailingGarbage) {
  Bytes wire = encode_payload(NasMessage(MsgType::kPaging));
  wire.push_back(0x00);
  EXPECT_FALSE(decode_payload(wire).has_value());
}

TEST(PayloadCodec, DeterministicFieldOrder) {
  NasMessage a(MsgType::kAttachRequest);
  a.set_u("x", 1).set_u("y", 2);
  NasMessage b(MsgType::kAttachRequest);
  b.set_u("y", 2).set_u("x", 1);
  EXPECT_EQ(encode_payload(a), encode_payload(b));
}

TEST(NasPdu, RoundTrip) {
  NasPdu pdu;
  pdu.sec_hdr = SecHdr::kIntegrityCiphered;
  pdu.count = 17;
  pdu.mac = 0xFEEDFACE12345678ULL;
  pdu.payload = {9, 8, 7};
  auto back = NasPdu::decode(pdu.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pdu);
}

TEST(NasPdu, RejectsBadHeader) {
  NasPdu pdu;
  Bytes wire = pdu.encode();
  wire[0] = 0x09;  // invalid security header type
  EXPECT_FALSE(NasPdu::decode(wire).has_value());
}

TEST(NasPdu, RejectsShortWire) {
  EXPECT_FALSE(NasPdu::decode({0x00, 0x01}).has_value());
  EXPECT_FALSE(NasPdu::decode({}).has_value());
}

TEST(NasPdu, EmptyPayloadAllowed) {
  NasPdu pdu;
  auto back = NasPdu::decode(pdu.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

}  // namespace
}  // namespace procheck::nas
