// Checker-layer tests: the 62-property catalog's shape, the LTEInspector
// baseline models, the RQ2 refinement claim, and the CEGAR loop on
// individual properties (spurious-counterexample pruning, verified vs
// attack verdicts, ablation with the freshness limit).
#include <gtest/gtest.h>

#include "checker/baseline.h"
#include "checker/cegar.h"
#include "checker/prochecker.h"
#include "checker/property.h"
#include "common/strings.h"
#include "fsm/refinement.h"

namespace procheck::checker {
namespace {

// Shared fixture: run the pipeline front half once per profile.
struct ExtractedModels {
  fsm::Fsm rich;
  fsm::Fsm flat;
};

const ExtractedModels& models_for(const ue::StackProfile& profile) {
  static std::map<std::string, ExtractedModels> cache;
  auto it = cache.find(profile.name);
  if (it == cache.end()) {
    instrument::TraceLogger trace;
    testing::run_conformance(profile, trace);
    extractor::Signatures sigs = extractor::ue_signatures(profile);
    extractor::ExtractionOptions opts;
    opts.initial_state = "EMM_DEREGISTERED";
    ExtractedModels m;
    m.rich = extractor::extract(trace.records(), sigs, opts);
    extractor::ExtractionOptions flat_opts = opts;
    flat_opts.chain_substates = false;
    m.flat = extractor::extract_basic(trace.records(), sigs, flat_opts);
    it = cache.emplace(profile.name, std::move(m)).first;
  }
  return it->second;
}

const PropertyDef& property(const std::string& id) {
  for (const PropertyDef& p : property_catalog()) {
    if (p.id == id) return p;
  }
  ADD_FAILURE() << "no property " << id;
  static PropertyDef dummy;
  return dummy;
}

PropertyResult run_one(const ue::StackProfile& profile, const std::string& id,
                       std::size_t max_states = 400000) {
  const ExtractedModels& m = models_for(profile);
  threat::ThreatModel tm = ProChecker::build_threat_model(m.flat);
  cpv::LteCryptoModel::Options copts;
  copts.usim_freshness_limit = profile.sqn_freshness_limit.has_value();
  cpv::LteCryptoModel crypto(copts);
  CegarOptions options;
  options.max_states = max_states;
  return check_property(tm, m.flat, property(id), crypto, options);
}

// --- Catalog shape -------------------------------------------------------------

TEST(Catalog, SixtyTwoProperties) {
  const auto& catalog = property_catalog();
  EXPECT_EQ(catalog.size(), 62u);
  int security = 0;
  int privacy = 0;
  std::set<std::string> ids;
  for (const PropertyDef& p : catalog) {
    EXPECT_TRUE(ids.insert(p.id).second) << "duplicate id " << p.id;
    EXPECT_FALSE(p.description.empty());
    if (p.type == PropertyDef::Type::kSecurity) ++security;
    if (p.type == PropertyDef::Type::kPrivacy) ++privacy;
  }
  // "We extracted, formalized, and verified a total of 62 properties among
  // them 25 are related to privacy and 37 related to security."
  EXPECT_EQ(security, 37);
  EXPECT_EQ(privacy, 25);
}

TEST(Catalog, FourteenCommonWithLteInspector) {
  EXPECT_EQ(common_properties().size(), 14u);  // Table II
}

TEST(Catalog, AttackIdsCoverTableOne) {
  std::set<std::string> attack_ids;
  for (const PropertyDef& p : property_catalog()) {
    if (!p.attack_id.empty()) attack_ids.insert(p.attack_id);
  }
  for (const char* id : {"P1", "P2", "P3", "I1", "I2", "I3", "I4", "I5", "I6"}) {
    EXPECT_TRUE(attack_ids.count(id)) << id;
  }
  // 14 prior-attack rows PR01..PR14.
  for (int i = 1; i <= 14; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "PR%02d", i);
    EXPECT_TRUE(attack_ids.count(buf)) << buf;
  }
}

TEST(MetaMatchTest, MatchesOnAllCriteria) {
  mc::CommandMeta meta;
  meta.actor = mc::CommandMeta::Actor::kUe;
  meta.kind = mc::CommandMeta::Kind::kDeliver;
  meta.message = "attach_accept";
  meta.atoms = {"mac_valid=1", "sec_hdr=integrity_protected_ciphered"};
  meta.actions = {"attach_complete"};
  meta.from_state = "EMM_REGISTERED_INITIATED";
  meta.to_state = "EMM_REGISTERED";
  meta.provenance = mc::kProvGenuine;

  MetaMatch m;
  EXPECT_TRUE(m.matches_meta(meta));  // empty matcher matches all
  m.message = "attach_accept";
  m.atoms_all = {"mac_valid=1"};
  m.actions_any = {"attach_complete"};
  m.provenance_any = {mc::kProvGenuine};
  m.action_nonnull = true;
  m.state_changed = true;
  EXPECT_TRUE(m.matches_meta(meta));
  m.atoms_none = {"mac_valid=1"};
  EXPECT_FALSE(m.matches_meta(meta));
  m.atoms_none.clear();
  m.provenance_any = {mc::kProvReplayed};
  EXPECT_FALSE(m.matches_meta(meta));
}

// --- Baseline models -------------------------------------------------------------

TEST(Baseline, UeModelShape) {
  fsm::Fsm m = lteinspector_ue_model();
  EXPECT_EQ(m.initial(), "ue_deregistered");
  EXPECT_EQ(m.states().size(), 4u);  // the coarse four-state machine
  EXPECT_GE(m.transitions().size(), 14u);
  EXPECT_EQ(m.reachable().size(), 4u);
}

TEST(Baseline, MmeModelShape) {
  fsm::Fsm m = lteinspector_mme_model();
  EXPECT_EQ(m.initial(), "mme_deregistered");
  EXPECT_GE(m.states().size(), 6u);
  EXPECT_EQ(m.reachable().size(), m.states().size());
}

TEST(Baseline, StateMapCoversAllBaselineStates) {
  auto map = lteinspector_state_map();
  fsm::Fsm ue = lteinspector_ue_model();
  for (const std::string& s : ue.states()) {
    EXPECT_TRUE(map.count(s)) << s;
  }
}

// --- RQ2: the extracted model refines the baseline --------------------------------

class RefinementPerProfile : public ::testing::TestWithParam<ue::StackProfile> {};

TEST_P(RefinementPerProfile, ExtractedRefinesLteInspector) {
  const ExtractedModels& m = models_for(GetParam());
  fsm::RefinementReport r =
      fsm::check_refinement(lteinspector_ue_model(), m.rich, lteinspector_state_map());
  EXPECT_TRUE(r.refines) << r.summary();
  // The paper's RQ2 claims: strict supersets of conditions and actions, and
  // a mixture of direct, condition-refined, and split mappings.
  EXPECT_TRUE(r.conditions_strict_superset);
  EXPECT_TRUE(r.actions_strict_superset);
  EXPECT_GT(r.count(fsm::TransitionMatch::kConditionRefined), 0);
}

INSTANTIATE_TEST_SUITE_P(Profiles, RefinementPerProfile,
                         ::testing::Values(ue::StackProfile::cls(), ue::StackProfile::srsue(),
                                           ue::StackProfile::oai()),
                         [](const auto& info) { return info.param.name; });

TEST(Refinement, Fig7DetachSplitsAcrossTheAttachNeededSubstate) {
  const ExtractedModels& m = models_for(ue::StackProfile::cls());
  fsm::RefinementReport r =
      fsm::check_refinement(lteinspector_ue_model(), m.rich, lteinspector_state_map());
  bool found = false;
  for (const fsm::TransitionMapping& tm : r.transition_mappings) {
    if (tm.abstract.conditions.count("detach_request") == 0) continue;
    if (tm.abstract.actions.count("detach_accept") == 0) continue;
    found = true;
    EXPECT_EQ(tm.match, fsm::TransitionMatch::kSplit);
    // The split path passes through the new intermediate substate.
    bool through_substate = false;
    for (const fsm::Transition& t : tm.refined) {
      through_substate =
          through_substate || t.to == "EMM_DEREGISTERED_ATTACH_NEEDED" ||
          t.from == "EMM_DEREGISTERED_ATTACH_NEEDED";
    }
    EXPECT_TRUE(through_substate);
  }
  EXPECT_TRUE(found);
}

TEST(Refinement, Fig7SmcConditionRefined) {
  const ExtractedModels& m = models_for(ue::StackProfile::cls());
  fsm::RefinementReport r =
      fsm::check_refinement(lteinspector_ue_model(), m.rich, lteinspector_state_map());
  for (const fsm::TransitionMapping& tm : r.transition_mappings) {
    if (tm.abstract.conditions.count("security_mode_command") == 0) continue;
    EXPECT_EQ(tm.match, fsm::TransitionMatch::kConditionRefined);
    ASSERT_EQ(tm.refined.size(), 1u);
    // The refined condition carries the payload predicate of Fig. 7(i).
    EXPECT_TRUE(tm.refined[0].conditions.count("ue_sequence_number=0"));
  }
}

// --- CEGAR on individual properties -------------------------------------------------

TEST(Cegar, P1AttackFoundOnConformantStack) {
  PropertyResult r = run_one(ue::StackProfile::cls(), "S01");
  EXPECT_EQ(r.status, PropertyResult::Status::kAttack);
  ASSERT_TRUE(r.counterexample.has_value());
  // The trace must contain the replayed challenge delivery.
  bool replay_step = false;
  for (const mc::TraceStep& s : r.counterexample->steps) {
    replay_step = replay_step || (s.meta.message == "authentication_request" &&
                                  s.meta.provenance == mc::kProvReplayed);
  }
  EXPECT_TRUE(replay_step);
}

TEST(Cegar, P1VerifiedWithFreshnessLimit) {
  // The DESIGN.md ablation: enabling TS 33.102 Annex C.2.2's L closes P1.
  ue::StackProfile mitigated = ue::StackProfile::cls();
  mitigated.sqn_freshness_limit = 1;
  PropertyResult r = run_one(mitigated, "S01");
  EXPECT_EQ(r.status, PropertyResult::Status::kVerified);
  EXPECT_FALSE(r.refinements.empty());  // the CPV pruned the replay
  EXPECT_GT(r.iterations, 1);
}

TEST(Cegar, P2LinkabilityConfirmedByEquivalence) {
  PropertyResult r = run_one(ue::StackProfile::cls(), "P01");
  EXPECT_EQ(r.status, PropertyResult::Status::kAttack);
  ASSERT_TRUE(r.equivalence.has_value());
  EXPECT_TRUE(r.equivalence->distinguishable);
}

TEST(Cegar, P3LivenessViolatedByDrops) {
  PropertyResult r = run_one(ue::StackProfile::cls(), "S02");
  EXPECT_EQ(r.status, PropertyResult::Status::kAttack);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_GE(r.counterexample->loop_start, 0);  // a lasso
}

TEST(Cegar, I1OnlyOnDeviantProfiles) {
  EXPECT_EQ(run_one(ue::StackProfile::cls(), "S05").status,
            PropertyResult::Status::kVerified);
  EXPECT_EQ(run_one(ue::StackProfile::srsue(), "S05").status,
            PropertyResult::Status::kAttack);
  EXPECT_EQ(run_one(ue::StackProfile::oai(), "S05").status,
            PropertyResult::Status::kAttack);
}

TEST(Cegar, I3OnlyOnSrs) {
  EXPECT_EQ(run_one(ue::StackProfile::srsue(), "S07").status,
            PropertyResult::Status::kAttack);
  EXPECT_EQ(run_one(ue::StackProfile::oai(), "S07").status,
            PropertyResult::Status::kVerified);
}

TEST(Cegar, I4OnlyOnSrs) {
  EXPECT_EQ(run_one(ue::StackProfile::srsue(), "S08").status,
            PropertyResult::Status::kAttack);
  EXPECT_EQ(run_one(ue::StackProfile::cls(), "S08").status,
            PropertyResult::Status::kVerified);
}

TEST(Cegar, I5OnlyOnOai) {
  EXPECT_EQ(run_one(ue::StackProfile::oai(), "P02").status,
            PropertyResult::Status::kAttack);
  EXPECT_EQ(run_one(ue::StackProfile::cls(), "P02").status,
            PropertyResult::Status::kVerified);
}

TEST(Cegar, SpuriousCounterexamplesArePruned) {
  // S20 (fabricated attach_accept) requires CEGAR: the optimistic model
  // produces a spurious trace that the CPV refutes.
  PropertyResult r = run_one(ue::StackProfile::cls(), "S20");
  EXPECT_EQ(r.status, PropertyResult::Status::kVerified);
  EXPECT_GT(r.iterations, 1);
  EXPECT_FALSE(r.refinements.empty());
  EXPECT_TRUE(contains(r.refinements[0], "banned"));
}

TEST(Cegar, NotApplicableProperties) {
  PropertyResult r = run_one(ue::StackProfile::cls(), "P04");  // TMSI realloc
  EXPECT_EQ(r.status, PropertyResult::Status::kNotApplicable);
  PropertyResult r2 = run_one(ue::StackProfile::cls(), "S17");  // RAT downgrade
  EXPECT_EQ(r2.status, PropertyResult::Status::kNotApplicable);
}

TEST(Cegar, EquivalenceRefutesNonLinkableViolation) {
  // P11 on srs: the replayed attach_accept is accepted (MC + CPV agree) but
  // the response is observationally uniform, so the privacy property is
  // adjudicated verified.
  PropertyResult r = run_one(ue::StackProfile::srsue(), "P11");
  EXPECT_EQ(r.status, PropertyResult::Status::kVerified);
  ASSERT_TRUE(r.equivalence.has_value());
  EXPECT_FALSE(r.equivalence->distinguishable);
}

TEST(Cegar, StatsAreRecorded) {
  PropertyResult r = run_one(ue::StackProfile::cls(), "S01");
  EXPECT_GT(r.last_stats.states_explored, 0u);
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_GE(r.iterations, 1);
}

// --- Budgets: exhaustion is inconclusive, never a fake verdict -----------------

TEST(CegarBudget, ExhaustedStateBoundIsInconclusive) {
  // S05 verifies on cls with the default budget; with a 3-state budget the
  // search is truncated long before the property's reachable fragment is
  // covered, and claiming "verified" would be unsound.
  PropertyResult r = run_one(ue::StackProfile::cls(), "S05", /*max_states=*/3);
  EXPECT_EQ(r.status, PropertyResult::Status::kInconclusive);
  EXPECT_TRUE(r.last_stats.bound_hit);
  EXPECT_TRUE(contains(r.note, "budget exhausted"));
  EXPECT_LE(r.last_stats.states_explored, 3u);
}

TEST(CegarBudget, ExhaustedWallClockIsInconclusive) {
  const ExtractedModels& m = models_for(ue::StackProfile::cls());
  threat::ThreatModel tm = ProChecker::build_threat_model(m.flat);
  cpv::LteCryptoModel::Options copts;
  cpv::LteCryptoModel crypto(copts);
  CegarOptions options;
  options.max_seconds = 1e-12;  // expires within the first iteration
  PropertyResult r = check_property(tm, m.flat, property("S05"), crypto, options);
  EXPECT_EQ(r.status, PropertyResult::Status::kInconclusive);
  EXPECT_TRUE(contains(r.note, "budget exhausted") || contains(r.note, "wall-clock"));
}

TEST(CegarBudget, DefaultBudgetsAreConclusiveAcrossTheCatalog) {
  // At the default budgets no property lands on the inconclusive path, so
  // the Table I reproduction is unaffected by the budget machinery. (The
  // integration suite pins the exact per-profile statuses; one profile
  // suffices here.)
  const ue::StackProfile profile = ue::StackProfile::cls();
  const ExtractedModels& m = models_for(profile);
  threat::ThreatModel tm = ProChecker::build_threat_model(m.flat);
  cpv::LteCryptoModel::Options copts;
  copts.usim_freshness_limit = profile.sqn_freshness_limit.has_value();
  cpv::LteCryptoModel crypto(copts);
  for (const PropertyDef& prop : property_catalog()) {
    PropertyResult r = check_property(tm, m.flat, prop, crypto, {});
    EXPECT_NE(r.status, PropertyResult::Status::kInconclusive)
        << profile.name << "/" << prop.id << ": " << r.note;
  }
}

// --- Parallel analysis: determinism contract ------------------------------------
//
// The fan-out in ProChecker::analyze must be invisible in the output: the
// jobs=N report equals the jobs=1 report field for field — statuses in
// catalog order, refinement strings, counterexample step labels, notes,
// and the attacks_found set. (DESIGN.md §10.)

void expect_reports_identical(const ImplementationReport& seq,
                              const ImplementationReport& par) {
  EXPECT_EQ(seq.attacks_found, par.attacks_found);
  ASSERT_EQ(seq.results.size(), par.results.size());
  for (std::size_t i = 0; i < seq.results.size(); ++i) {
    const PropertyResult& a = seq.results[i];
    const PropertyResult& b = par.results[i];
    EXPECT_EQ(a.property_id, b.property_id) << "catalog order differs at " << i;
    EXPECT_EQ(a.status, b.status) << a.property_id;
    EXPECT_EQ(a.attack_id, b.attack_id) << a.property_id;
    EXPECT_EQ(a.refinements, b.refinements) << a.property_id;
    EXPECT_EQ(a.note, b.note) << a.property_id;
    EXPECT_EQ(a.iterations, b.iterations) << a.property_id;
    EXPECT_EQ(a.total_states, b.total_states) << a.property_id;
    EXPECT_EQ(a.counterexample.has_value(), b.counterexample.has_value()) << a.property_id;
    if (a.counterexample && b.counterexample) {
      EXPECT_EQ(a.counterexample->loop_start, b.counterexample->loop_start) << a.property_id;
      ASSERT_EQ(a.counterexample->steps.size(), b.counterexample->steps.size())
          << a.property_id;
      for (std::size_t s = 0; s < a.counterexample->steps.size(); ++s) {
        EXPECT_EQ(a.counterexample->steps[s].label, b.counterexample->steps[s].label)
            << a.property_id << " step " << s;
        EXPECT_EQ(a.counterexample->steps[s].post, b.counterexample->steps[s].post)
            << a.property_id << " step " << s;
      }
    }
    EXPECT_EQ(a.equivalence.has_value(), b.equivalence.has_value()) << a.property_id;
    if (a.equivalence && b.equivalence) {
      EXPECT_EQ(a.equivalence->distinguishable, b.equivalence->distinguishable)
          << a.property_id;
      EXPECT_EQ(a.equivalence->reason, b.equivalence->reason) << a.property_id;
    }
  }
}

// Fast contract check over a property subset covering every verdict path
// (attack, CEGAR-verified, liveness lasso, linkability, not-applicable).
// This is the test the `tsan` ctest entry runs under ThreadSanitizer.
TEST(ParallelAnalysis, SubsetDeterminism) {
  AnalysisOptions options;
  options.only_properties = {"S01", "S02", "S05", "S20", "P01", "P04", "P11"};
  options.jobs = 1;
  ImplementationReport seq = ProChecker::analyze(ue::StackProfile::cls(), options);
  options.jobs = 4;
  ImplementationReport par = ProChecker::analyze(ue::StackProfile::cls(), options);
  EXPECT_EQ(seq.results.size(), options.only_properties.size());
  expect_reports_identical(seq, par);
}

TEST(ParallelAnalysis, FullCatalogMatchesSequential) {
  AnalysisOptions options;
  options.jobs = 1;
  ImplementationReport seq = ProChecker::analyze(ue::StackProfile::cls(), options);
  options.jobs = 4;
  ImplementationReport par = ProChecker::analyze(ue::StackProfile::cls(), options);
  EXPECT_EQ(seq.results.size(), property_catalog().size());
  expect_reports_identical(seq, par);
}

}  // namespace
}  // namespace procheck::checker
