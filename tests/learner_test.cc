// Black-box L* learner tests: the SUL harness determinism, the learned
// Mealy machine's behavior, and the paper's §VIII comparison claims (high
// query cost; no state names; no predicate conditions).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "learner/lstar.h"
#include "learner/sul.h"

namespace procheck::learner {
namespace {

TEST(Sul, ResetRestoresInitialBehavior) {
  UeSul sul(ue::StackProfile::cls());
  auto first = sul.run({"power_on", "authentication_request"});
  auto second = sul.run({"power_on", "authentication_request"});
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], "attach_request");
  EXPECT_EQ(first[1], "authentication_response");
}

TEST(Sul, FullHandshakeObservable) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"power_on", "authentication_request", "security_mode_command",
                          "attach_accept"});
  EXPECT_EQ(outputs,
            (std::vector<std::string>{"attach_request", "authentication_response",
                                      "security_mode_complete", "attach_complete"}));
}

TEST(Sul, InputsOutOfOrderYieldNullOrRejects) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"attach_accept", "security_mode_command"});
  EXPECT_EQ(outputs[0], "null");  // plain attach_accept pre-attach: discarded
  EXPECT_EQ(outputs[1], "security_mode_reject");  // unverifiable SMC
}

TEST(Sul, CountsResetsAndSteps) {
  UeSul sul(ue::StackProfile::cls());
  long r0 = sul.resets();
  long s0 = sul.steps();
  sul.run({"power_on", "paging"});
  EXPECT_EQ(sul.resets(), r0 + 1);
  EXPECT_EQ(sul.steps(), s0 + 2);
}

TEST(Sul, IdentityRequestAnsweredPreAuth) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"power_on", "identity_request"});
  EXPECT_EQ(outputs[1], "identity_response");
}

TEST(MealyMachineTest, RunAndFsmExport) {
  MealyMachine m;
  m.state_count = 2;
  m.initial = 0;
  m.delta[{0, "a"}] = {1, "x"};
  m.delta[{1, "a"}] = {0, "null"};
  EXPECT_EQ(m.run({"a", "a", "a"}), (std::vector<std::string>{"x", "null", "x"}));
  fsm::Fsm f = m.to_fsm();
  EXPECT_EQ(f.initial(), "q0");
  EXPECT_EQ(f.states(), (std::set<std::string>{"q0", "q1"}));
  EXPECT_TRUE(f.actions().count("x"));
  EXPECT_TRUE(f.actions().count(fsm::kNullAction));
}

TEST(LStar, LearnsTheUeStateMachine) {
  UeSul sul(ue::StackProfile::cls());
  LearnOptions options;
  options.eq_test_words = 500;  // thorough random oracle for this assertion
  LearnResult result = learn_mealy(sul, options);
  ASSERT_TRUE(result.converged);
  // The learned machine needs several states (deregistered, attach pending,
  // authenticated, secured, registered, ...).
  EXPECT_GE(result.machine.state_count, 4);

  // The hypothesis agrees with the black box on the canonical handshake.
  std::vector<std::string> handshake{"power_on", "authentication_request",
                                     "security_mode_command", "attach_accept"};
  EXPECT_EQ(result.machine.run(handshake), sul.run(handshake));
}

TEST(LStar, HypothesisMatchesSulOnRandomWords) {
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  ASSERT_TRUE(result.converged);
  Rng rng(123);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::string> word;
    std::size_t len = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(input_alphabet()[rng.next_below(input_alphabet().size())]);
    }
    EXPECT_EQ(result.machine.run(word), sul.run(word)) << "word " << t;
  }
}

TEST(LStar, QueryCostIsOrdersAboveWhiteBox) {
  // The paper's §VIII claim: active learning needs a significantly high
  // number of queries, while ProChecker needs one instrumented conformance
  // run. Each membership query is a full UE reset + word execution.
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  EXPECT_GT(result.membership_queries, 200);
  EXPECT_GT(result.sul_resets, 200);
  EXPECT_GT(result.sul_steps, 1000);
}

TEST(LStar, LearnedFsmLacksSemanticRichness) {
  // "the extracted FSM does not have a proper indication of states and...
  // the white-box setup has a lot more information" — the learned machine
  // has synthetic q-states and message-only conditions (no predicates).
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  fsm::Fsm f = result.machine.to_fsm();
  for (const std::string& s : f.states()) {
    EXPECT_EQ(s[0], 'q');  // no 3GPP state names
  }
  for (const fsm::Atom& c : f.conditions()) {
    EXPECT_EQ(c.find('='), std::string::npos);  // no predicate conditions
  }
}

}  // namespace
}  // namespace procheck::learner
