// Black-box L* learner tests: the SUL harness determinism, the learned
// Mealy machine's behavior, the prefix-tree query cache and batched
// observation-table rounds (DESIGN.md §14), and the paper's §VIII comparison
// claims (high query cost; no state names; no predicate conditions).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "learner/lstar.h"
#include "learner/output_trie.h"
#include "learner/sul.h"

namespace procheck::learner {
namespace {

TEST(Sul, ResetRestoresInitialBehavior) {
  UeSul sul(ue::StackProfile::cls());
  auto first = sul.run({"power_on", "authentication_request"});
  auto second = sul.run({"power_on", "authentication_request"});
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], "attach_request");
  EXPECT_EQ(first[1], "authentication_response");
}

TEST(Sul, FullHandshakeObservable) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"power_on", "authentication_request", "security_mode_command",
                          "attach_accept"});
  EXPECT_EQ(outputs,
            (std::vector<std::string>{"attach_request", "authentication_response",
                                      "security_mode_complete", "attach_complete"}));
}

TEST(Sul, InputsOutOfOrderYieldNullOrRejects) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"attach_accept", "security_mode_command"});
  EXPECT_EQ(outputs[0], "null");  // plain attach_accept pre-attach: discarded
  EXPECT_EQ(outputs[1], "security_mode_reject");  // unverifiable SMC
}

TEST(Sul, CountsResetsAndSteps) {
  UeSul sul(ue::StackProfile::cls());
  long r0 = sul.resets();
  long s0 = sul.steps();
  sul.run({"power_on", "paging"});
  EXPECT_EQ(sul.resets(), r0 + 1);
  EXPECT_EQ(sul.steps(), s0 + 2);
}

TEST(Sul, IdentityRequestAnsweredPreAuth) {
  UeSul sul(ue::StackProfile::cls());
  auto outputs = sul.run({"power_on", "identity_request"});
  EXPECT_EQ(outputs[1], "identity_response");
}

TEST(MealyMachineTest, RunAndFsmExport) {
  MealyMachine m;
  m.state_count = 2;
  m.initial = 0;
  m.delta[{0, "a"}] = {1, "x"};
  m.delta[{1, "a"}] = {0, "null"};
  EXPECT_EQ(m.run({"a", "a", "a"}), (std::vector<std::string>{"x", "null", "x"}));
  fsm::Fsm f = m.to_fsm();
  EXPECT_EQ(f.initial(), "q0");
  EXPECT_EQ(f.states(), (std::set<std::string>{"q0", "q1"}));
  EXPECT_TRUE(f.actions().count("x"));
  EXPECT_TRUE(f.actions().count(fsm::kNullAction));
}

// --- Output trie (the prefix-closed membership-query cache) ------------------

TEST(OutputTrie, PrefixesOfInsertedWordsAnswerFree) {
  OutputTrie trie;
  trie.insert({"a", "b", "c"}, {"x", "y", "z"});

  // The inserted word itself: an endpoint hit.
  auto full = trie.lookup({"a", "b", "c"});
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(trie.stats().hits, 1);

  // A proper prefix was never inserted, yet its edges are all known.
  auto prefix = trie.lookup({"a", "b"});
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(trie.stats().prefix_hits, 1);

  // Any unknown edge is a miss — sideways or past the end.
  EXPECT_FALSE(trie.lookup({"a", "d"}).has_value());
  EXPECT_FALSE(trie.lookup({"a", "b", "c", "d"}).has_value());
  EXPECT_EQ(trie.stats().misses, 2);

  // contains() and known_prefix_length() are planning reads: no stat churn.
  const long hits_before = trie.stats().hits;
  EXPECT_TRUE(trie.contains({"a", "b"}));
  EXPECT_EQ(trie.known_prefix_length({"a", "b", "q"}), 2u);
  EXPECT_EQ(trie.known_prefix_length({"q"}), 0u);
  EXPECT_EQ(trie.stats().hits, hits_before);
}

TEST(OutputTrie, FirstObservationWinsAndDisagreementIsFlagged) {
  OutputTrie trie;
  trie.insert({"a"}, {"x"});
  // A later word disagreeing on the shared edge: flagged, never applied.
  trie.insert({"a", "b"}, {"y", "z"});
  EXPECT_EQ(trie.stats().nondeterministic, 1);
  auto got = trie.lookup({"a", "b"});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::string>{"x", "z"}))
      << "the first-observed edge output must stay stable";

  // A consistent re-insert is free of both flags and new nodes.
  const std::size_t nodes = trie.node_count();
  trie.insert({"a", "b"}, {"x", "z"});
  EXPECT_EQ(trie.stats().nondeterministic, 1);
  EXPECT_EQ(trie.node_count(), nodes);
}

TEST(OutputTrie, MismatchedSizesAreIgnored) {
  OutputTrie trie;
  trie.insert({"a", "b"}, {"x"});  // outputs too short: ignored
  EXPECT_FALSE(trie.lookup({"a"}).has_value());
  EXPECT_EQ(trie.node_count(), 1u);  // still just the root
}

// --- Batched observation-table rounds ----------------------------------------

/// Forwards to an in-process UeSul while recording every batch the learner
/// ships, so tests can pin the batching contract (dedupe, prefix subsumption,
/// byte-identical results).
class BatchRecordingSul final : public Sul {
 public:
  explicit BatchRecordingSul(ue::StackProfile profile) : inner_(std::move(profile)) {}

  void reset() override { inner_.reset(); }
  std::string step(const std::string& input) override { return inner_.step(input); }
  long resets() const override { return inner_.resets(); }
  long steps() const override { return inner_.steps(); }

  std::vector<std::vector<std::string>> query_batch(
      const std::vector<std::vector<std::string>>& words) override {
    batches.push_back(words);
    return Sul::query_batch(words);
  }

  std::vector<std::vector<std::vector<std::string>>> batches;

 private:
  UeSul inner_;
};

TEST(LStar, BatchedRoundsAreByteIdenticalToSequentialLearning) {
  UeSul plain(ue::StackProfile::cls());
  LearnResult sequential = learn_mealy(plain);
  ASSERT_TRUE(sequential.converged);

  BatchRecordingSul recording(ue::StackProfile::cls());
  LearnResult batched = learn_mealy(recording);
  ASSERT_TRUE(batched.converged);

  EXPECT_EQ(batched.machine.to_fsm().to_dot("learned"),
            sequential.machine.to_fsm().to_dot("learned"));
  EXPECT_EQ(batched.membership_queries, sequential.membership_queries);
  ASSERT_FALSE(recording.batches.empty());
  EXPECT_EQ(static_cast<long>(recording.batches.size()), batched.batch_queries);

  // Satellite (a): within every batch the words are deduplicated, and no
  // word is a prefix of another (the longer word's answer subsumes it).
  std::set<std::vector<std::string>> ever_sent;
  long words_shipped = 0;
  for (const auto& batch : recording.batches) {
    words_shipped += static_cast<long>(batch.size());
    std::set<std::vector<std::string>> in_batch;
    for (const auto& word : batch) {
      EXPECT_TRUE(in_batch.insert(word).second) << "duplicate word within a batch";
      EXPECT_TRUE(ever_sent.insert(word).second)
          << "word re-queried despite the trie cache";
    }
    for (const auto& shorter : batch) {
      for (const auto& longer : batch) {
        if (shorter.size() < longer.size() &&
            std::equal(shorter.begin(), shorter.end(), longer.begin())) {
          ADD_FAILURE() << "batched word is a prefix of a batch sibling";
        }
      }
    }
  }
  EXPECT_EQ(words_shipped, batched.batched_words);
  // The equivalence oracle's cache misses are queried one word at a time, so
  // the total query count strictly dominates the batched share.
  EXPECT_LE(words_shipped, batched.membership_queries);

  // The cache did real work: prefix hits answered table cells for free.
  EXPECT_GT(batched.cache_prefix_hits, 0);
  EXPECT_EQ(batched.nondeterministic_cached, 0);
}

TEST(LStar, LearnsTheUeStateMachine) {
  UeSul sul(ue::StackProfile::cls());
  LearnOptions options;
  options.eq_test_words = 500;  // thorough random oracle for this assertion
  LearnResult result = learn_mealy(sul, options);
  ASSERT_TRUE(result.converged);
  // The learned machine needs several states (deregistered, attach pending,
  // authenticated, secured, registered, ...).
  EXPECT_GE(result.machine.state_count, 4);

  // The hypothesis agrees with the black box on the canonical handshake.
  std::vector<std::string> handshake{"power_on", "authentication_request",
                                     "security_mode_command", "attach_accept"};
  EXPECT_EQ(result.machine.run(handshake), sul.run(handshake));
}

TEST(LStar, HypothesisMatchesSulOnRandomWords) {
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  ASSERT_TRUE(result.converged);
  Rng rng(123);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::string> word;
    std::size_t len = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(input_alphabet()[rng.next_below(input_alphabet().size())]);
    }
    EXPECT_EQ(result.machine.run(word), sul.run(word)) << "word " << t;
  }
}

TEST(LStar, QueryCostIsOrdersAboveWhiteBox) {
  // The paper's §VIII claim: active learning needs a significantly high
  // number of queries, while ProChecker needs one instrumented conformance
  // run. Each membership query is a full UE reset + word execution.
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  EXPECT_GT(result.membership_queries, 200);
  EXPECT_GT(result.sul_resets, 200);
  EXPECT_GT(result.sul_steps, 1000);
}

TEST(LStar, LearnedFsmLacksSemanticRichness) {
  // "the extracted FSM does not have a proper indication of states and...
  // the white-box setup has a lot more information" — the learned machine
  // has synthetic q-states and message-only conditions (no predicates).
  UeSul sul(ue::StackProfile::cls());
  LearnResult result = learn_mealy(sul);
  fsm::Fsm f = result.machine.to_fsm();
  for (const std::string& s : f.states()) {
    EXPECT_EQ(s[0], 'q');  // no 3GPP state names
  }
  for (const fsm::Atom& c : f.conditions()) {
    EXPECT_EQ(c.find('='), std::string::npos);  // no predicate conditions
  }
}

}  // namespace
}  // namespace procheck::learner
