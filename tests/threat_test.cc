// Threat-model composer tests: alphabets, provenance admissibility, the
// indicator flags, key-possession guards, and the adversary command set of
// the compiled IMP^μ.
#include <gtest/gtest.h>

#include "checker/baseline.h"
#include "common/strings.h"
#include "threat/compose.h"

namespace procheck::threat {
namespace {

fsm::Transition make(std::string from, std::string to, std::set<fsm::Atom> cond,
                     std::set<fsm::Atom> act) {
  fsm::Transition t;
  t.from = std::move(from);
  t.to = std::move(to);
  t.conditions = std::move(cond);
  t.actions = std::move(act);
  return t;
}

/// Minimal UE machine exercising trigger, plain, protected, and
/// replay-tolerant transitions.
fsm::Fsm tiny_ue() {
  fsm::Fsm m;
  m.set_initial("DEREG");
  m.add_transition(make("DEREG", "WAIT", {"power_on_trigger"}, {"attach_request"}));
  m.add_transition(make("WAIT", "WAIT",
                        {"authentication_request", "sec_hdr=plain_nas", "mac_valid=1",
                         "sqn_ok=1"},
                        {"authentication_response"}));
  m.add_transition(make("WAIT", "WAIT",
                        {"security_mode_command", "sec_hdr=integrity_protected",
                         "mac_valid=1"},
                        {"security_mode_complete"}));
  m.add_transition(make("WAIT", "REG",
                        {"attach_accept", "sec_hdr=integrity_protected_ciphered",
                         "mac_valid=1"},
                        {"attach_complete"}));
  m.add_transition(make("REG", "REG",
                        {"attach_accept", "sec_hdr=integrity_protected_ciphered",
                         "replay_accepted=1"},
                        {fsm::kNullAction}));
  m.add_transition(make("REG", "DEREG", {"attach_reject", "sec_hdr=plain_nas",
                                         "ctx_deleted=1"},
                        {fsm::kNullAction}));
  return m;
}

fsm::Fsm tiny_mme() {
  fsm::Fsm m;
  m.set_initial("M_DEREG");
  m.add_transition(make("M_DEREG", "M_WAIT", {"attach_request"}, {"authentication_request"}));
  m.add_transition(make("M_WAIT", "M_SMC", {"authentication_response", "res_valid=1"},
                        {"security_mode_command"}));
  m.add_transition(make("M_SMC", "M_REG", {"security_mode_complete", "integrity_ok=1"},
                        {"attach_accept"}));
  return m;
}

ThreatModel tiny_model() { return compose(tiny_ue(), tiny_mme()); }

// --- split_conditions ---------------------------------------------------------

TEST(SplitConditions, SeparatesMessageTriggerAndPredicates) {
  ConditionSplit s = split_conditions({"attach_accept", "mac_valid=1", "sqn_ok=0"});
  EXPECT_EQ(s.message, "attach_accept");
  EXPECT_FALSE(s.is_trigger);
  EXPECT_EQ(s.predicates.size(), 2u);

  ConditionSplit t = split_conditions({"power_on_trigger"});
  EXPECT_EQ(t.message, "power_on_trigger");
  EXPECT_TRUE(t.is_trigger);
}

// --- Composition --------------------------------------------------------------

TEST(Compose, VariablesPresent) {
  ThreatModel tm = tiny_model();
  EXPECT_GE(tm.ue_state, 0);
  EXPECT_GE(tm.mme_state, 0);
  EXPECT_GE(tm.chan_dl, 0);
  EXPECT_GE(tm.chan_ul_prov, 0);
  EXPECT_GE(tm.flag_auth, 0);
  EXPECT_GE(tm.flag_ctx, 0);
  EXPECT_GE(tm.chan_ul_protected, 0);
  EXPECT_EQ(tm.model.value_name(tm.ue_state, tm.ue_state_index("DEREG")), "DEREG");
  EXPECT_EQ(tm.model.initial()[tm.ue_state], tm.ue_state_index("DEREG"));
}

TEST(Compose, AlphabetsCoverBothMachines) {
  ThreatModel tm = tiny_model();
  EXPECT_EQ(tm.dl_alphabet[0], "none");
  EXPECT_GE(tm.dl_index("attach_accept"), 1);
  EXPECT_GE(tm.dl_index("authentication_request"), 1);
  EXPECT_GE(tm.dl_index("attach_reject"), 1);  // UE condition only
  EXPECT_GE(tm.ul_index("attach_request"), 1);
  EXPECT_GE(tm.ul_index("security_mode_complete"), 1);
  EXPECT_EQ(tm.dl_index("not_a_message"), -1);
}

TEST(Compose, TriggersAreNotMessages) {
  ThreatModel tm = tiny_model();
  EXPECT_EQ(tm.dl_index("power_on_trigger"), -1);
  EXPECT_EQ(tm.ul_index("power_on_trigger"), -1);
}

TEST(Compose, AdversaryCommandSet) {
  ThreatModel tm = tiny_model();
  int drops = 0;
  int injects = 0;
  int replays = 0;
  bool replay_attach_reject = false;
  for (const mc::Command& cmd : tm.model.commands()) {
    if (cmd.meta.actor != mc::CommandMeta::Actor::kAdversary) continue;
    switch (cmd.meta.kind) {
      case mc::CommandMeta::Kind::kDrop:
        ++drops;
        break;
      case mc::CommandMeta::Kind::kInject:
        ++injects;
        break;
      case mc::CommandMeta::Kind::kReplay:
        ++replays;
        replay_attach_reject = replay_attach_reject || cmd.meta.message == "attach_reject";
        break;
      default:
        break;
    }
  }
  // Every non-none channel symbol gets drop + inject.
  int symbols = static_cast<int>(tm.dl_alphabet.size() + tm.ul_alphabet.size()) - 2;
  EXPECT_EQ(drops, symbols);
  EXPECT_EQ(injects, symbols);
  // Replays only for genuinely transmitted messages: attach_reject is in the
  // UE's condition alphabet but nothing sends it.
  EXPECT_GT(replays, 0);
  EXPECT_FALSE(replay_attach_reject);
}

TEST(Compose, ExtraDownlinkBecomesInjectableAndReplayable) {
  ComposeOptions options;
  options.extra_downlink = {"attach_reject"};
  ThreatModel tm = compose(tiny_ue(), tiny_mme(), options);
  bool replay_attach_reject = false;
  for (const mc::Command& cmd : tm.model.commands()) {
    replay_attach_reject = replay_attach_reject ||
                           (cmd.meta.kind == mc::CommandMeta::Kind::kReplay &&
                            cmd.meta.message == "attach_reject");
  }
  EXPECT_TRUE(replay_attach_reject);
}

TEST(Compose, ProvenanceAdmissibility) {
  ThreatModel tm = tiny_model();
  // Collect (message, provenance) pairs of UE deliver commands.
  std::set<std::pair<std::string, int>> seen;
  for (const mc::Command& cmd : tm.model.commands()) {
    if (cmd.meta.actor == mc::CommandMeta::Actor::kUe &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      seen.insert({cmd.meta.message + "|" + cmd.meta.from_state, cmd.meta.provenance});
    }
  }
  // Plain auth request: all three provenances (replay allowed on plain).
  EXPECT_TRUE(seen.count({"authentication_request|WAIT", mc::kProvGenuine}));
  EXPECT_TRUE(seen.count({"authentication_request|WAIT", mc::kProvFabricated}));
  EXPECT_TRUE(seen.count({"authentication_request|WAIT", mc::kProvReplayed}));
  // Ciphered attach_accept accept-transition: no replay provenance (stale
  // COUNT would be rejected) ...
  EXPECT_TRUE(seen.count({"attach_accept|WAIT", mc::kProvGenuine}));
  EXPECT_FALSE(seen.count({"attach_accept|WAIT", mc::kProvReplayed}));
  // ... but the replay-tolerant transition admits it.
  EXPECT_TRUE(seen.count({"attach_accept|REG", mc::kProvReplayed}));
}

TEST(Compose, DeliverClearsChannelAndEmitsAction) {
  ThreatModel tm = tiny_model();
  // Find the genuine auth-request deliver command and execute it.
  mc::State s = tm.model.initial();
  s[tm.ue_state] = tm.ue_state_index("WAIT");
  s[tm.chan_dl] = tm.dl_index("authentication_request");
  s[tm.chan_dl_prov] = mc::kProvGenuine;
  bool fired = false;
  tm.model.successors(s, [&](const mc::State& next, const mc::Command& cmd) {
    if (cmd.meta.kind != mc::CommandMeta::Kind::kDeliver) return;
    if (cmd.meta.message != "authentication_request") return;
    fired = true;
    EXPECT_EQ(next[tm.chan_dl], 0);
    EXPECT_EQ(next[tm.chan_ul], tm.ul_index("authentication_response"));
    EXPECT_EQ(next[tm.chan_ul_prov], mc::kProvGenuine);
    EXPECT_EQ(next[tm.flag_auth], 1);  // vocabulary-driven indicator
  });
  EXPECT_TRUE(fired);
}

TEST(Compose, SmcRequiresKeyPossession) {
  // The SMC deliver command is guarded on flag_auth ∨ flag_ctx: the UE
  // cannot MAC-verify an SMC without keys.
  ThreatModel tm = tiny_model();
  mc::State s = tm.model.initial();
  s[tm.ue_state] = tm.ue_state_index("WAIT");
  s[tm.chan_dl] = tm.dl_index("security_mode_command");
  s[tm.chan_dl_prov] = mc::kProvGenuine;
  s[tm.chan_dl_protected] = 1;  // the genuine SMC is integrity-protected
  int fired_without_keys = 0;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.message == "security_mode_command" &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired_without_keys;
    }
  });
  EXPECT_EQ(fired_without_keys, 0);
  s[tm.flag_auth] = 1;
  int fired_with_keys = 0;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.message == "security_mode_command" &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired_with_keys;
    }
  });
  EXPECT_GT(fired_with_keys, 0);
}

TEST(Compose, CipheredDeliveryRequiresContext) {
  ThreatModel tm = tiny_model();
  mc::State s = tm.model.initial();
  s[tm.ue_state] = tm.ue_state_index("WAIT");
  s[tm.chan_dl] = tm.dl_index("attach_accept");
  s[tm.chan_dl_prov] = mc::kProvGenuine;
  s[tm.chan_dl_protected] = 1;  // genuine attach_accept is ciphered
  int fired = 0;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.message == "attach_accept" &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired;
    }
  });
  EXPECT_EQ(fired, 0);  // flag_ctx = 0: cannot decipher
  s[tm.flag_ctx] = 1;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.message == "attach_accept" &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired;
    }
  });
  EXPECT_GT(fired, 0);
}

TEST(Compose, MmeIntegrityGuardRequiresProtectedUplink) {
  ThreatModel tm = tiny_model();
  mc::State s = tm.model.initial();
  s[tm.mme_state] = tm.mme_state_index("M_SMC");
  s[tm.chan_ul] = tm.ul_index("security_mode_complete");
  s[tm.chan_ul_prov] = mc::kProvGenuine;
  s[tm.chan_ul_protected] = 0;
  int fired = 0;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.actor == mc::CommandMeta::Actor::kMme &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired;
    }
  });
  EXPECT_EQ(fired, 0);
  s[tm.chan_ul_protected] = 1;
  tm.model.successors(s, [&](const mc::State&, const mc::Command& cmd) {
    if (cmd.meta.actor == mc::CommandMeta::Actor::kMme &&
        cmd.meta.kind == mc::CommandMeta::Kind::kDeliver) {
      ++fired;
    }
  });
  EXPECT_GT(fired, 0);
}

TEST(Compose, ContextClearedOnRejectTransition) {
  ThreatModel tm = tiny_model();
  mc::State s = tm.model.initial();
  s[tm.ue_state] = tm.ue_state_index("REG");
  s[tm.flag_ctx] = 1;
  s[tm.chan_dl] = tm.dl_index("attach_reject");
  s[tm.chan_dl_prov] = mc::kProvFabricated;
  bool fired = false;
  tm.model.successors(s, [&](const mc::State& next, const mc::Command& cmd) {
    if (cmd.meta.message != "attach_reject" ||
        cmd.meta.kind != mc::CommandMeta::Kind::kDeliver) {
      return;
    }
    fired = true;
    EXPECT_EQ(next[tm.flag_ctx], 0);  // ctx_deleted=1 atom clears it
    EXPECT_EQ(next[tm.ue_state], tm.ue_state_index("DEREG"));
  });
  EXPECT_TRUE(fired);
}

TEST(Compose, BaselineModelsComposeToo) {
  // The checker composes the extracted UE with the manual MME; the manual
  // UE baseline must also compose (Fig. 8's comparison model).
  ThreatModel tm = compose(checker::lteinspector_ue_model(),
                           checker::lteinspector_mme_model());
  EXPECT_GT(tm.model.commands().size(), 30u);
  EXPECT_GE(tm.dl_index("attach_accept"), 1);
}

TEST(Compose, SmvDumpContainsTheComposition) {
  ThreatModel tm = tiny_model();
  std::string smv = tm.model.to_smv();
  EXPECT_TRUE(contains(smv, "ue_state"));
  EXPECT_TRUE(contains(smv, "chan_dl"));
  EXPECT_TRUE(contains(smv, "adv_inject_dl_attach_reject"));
}

}  // namespace
}  // namespace procheck::threat
