// Remote-SUL transport suite (DESIGN.md §12): wire codec contracts, the
// fault-tolerant client against a real loopback server, every chaos-proxy
// regime, the circuit breaker's full state walk, nondeterminism detection,
// and the kill-the-server-at-every-message determinism sweep.
//
// The load-bearing invariants, end to end:
//   * lossless chaos (delay / fragmentation / byte reorder / connection
//     kills with replay) never changes a learning or conformance result —
//     byte-identical to the clean in-process run;
//   * lossy chaos (corruption, dead server) terminates with structured
//     degradation (framing errors, kSulUnavailable, inconclusive verdicts)
//     — never a hang, never a throw, never silently wrong data.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_conformance.h"
#include "net/remote_sul.h"
#include "net/socket.h"
#include "net/sul_server.h"
#include "net/wire.h"
#include "ue/profile.h"

namespace procheck::net {
namespace {

// Tight budgets keep failure paths fast; generous enough for loopback.
RemoteSulOptions client_options(std::uint16_t port) {
  RemoteSulOptions o;
  o.port = port;
  o.call_deadline_seconds = 2.0;
  o.connect_timeout_seconds = 0.25;
  o.backoff_base_seconds = 0.002;
  o.backoff_max_seconds = 0.02;
  o.attempts_per_query = 4;
  o.breaker_failure_threshold = 4;
  o.breaker_open_seconds = 0.1;
  return o;
}

// Same budgets with the word/batch protocol disabled: the client never
// offers a batch in its hello, so every query walks the v2 per-symbol path.
RemoteSulOptions per_symbol_options(std::uint16_t port) {
  RemoteSulOptions o = client_options(port);
  o.max_batch_words = 0;
  return o;
}

learner::LearnOptions quick_learn_options() {
  learner::LearnOptions o;
  o.eq_test_words = 40;  // small but sufficient to converge on cls
  o.eq_test_max_length = 5;
  o.seed = 0xBEEF;
  return o;
}

std::string fsm_text(const learner::LearnResult& result) {
  return result.machine.to_fsm().to_dot("learned");
}

// --- Wire codec --------------------------------------------------------------

TEST(Wire, RoundTripsEveryFrameType) {
  for (auto type : {FrameType::kHello, FrameType::kHelloAck, FrameType::kReset,
                    FrameType::kResetAck, FrameType::kStep, FrameType::kStepAck,
                    FrameType::kPing, FrameType::kPong, FrameType::kBye, FrameType::kError}) {
    Frame f;
    f.type = type;
    f.epoch = 7;
    f.seq = 99;
    f.payload = "security_mode_command";
    Bytes wire = encode_frame(f);
    std::size_t consumed = 0;
    Decoded d = decode_frame(wire, &consumed);
    ASSERT_EQ(d.status, DecodeStatus::kFrame) << to_string(type);
    EXPECT_EQ(d.frame, f);
    EXPECT_EQ(consumed, wire.size());
  }
}

TEST(Wire, EveryProperPrefixNeedsMore) {
  Frame f;
  f.type = FrameType::kStep;
  f.payload = "attach_accept";
  Bytes wire = encode_frame(f);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_EQ(decode_frame(prefix).status, DecodeStatus::kNeedMore) << "prefix " << n;
  }
}

TEST(Wire, RejectsBadMagicVersionTypeAndLength) {
  Frame f;
  f.type = FrameType::kPing;
  Bytes good = encode_frame(f);

  Bytes bad_magic = good;
  bad_magic[4] ^= 0xFF;
  EXPECT_EQ(decode_frame(bad_magic).status, DecodeStatus::kBadFrame);

  Bytes bad_version = good;
  bad_version[6] = kWireVersion + 1;
  EXPECT_EQ(decode_frame(bad_version).status, DecodeStatus::kBadFrame);

  Bytes bad_type = good;
  bad_type[7] = 0xEE;
  EXPECT_EQ(decode_frame(bad_type).status, DecodeStatus::kBadFrame);

  // A length prefix claiming more than kMaxFramePayload must be rejected
  // before it can drive allocation.
  Bytes huge = good;
  huge[0] = 0x7F;
  EXPECT_EQ(decode_frame(huge).status, DecodeStatus::kBadFrame);
}

TEST(Wire, ReaderReassemblesByteAtATime) {
  std::vector<Frame> frames;
  for (int i = 0; i < 5; ++i) {
    Frame f;
    f.type = FrameType::kStepAck;
    f.epoch = 1;
    f.seq = static_cast<std::uint32_t>(i);
    f.payload = "output-" + std::to_string(i);
    frames.push_back(f);
  }
  Bytes stream;
  for (const Frame& f : frames) {
    Bytes one = encode_frame(f);
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameReader reader;
  std::size_t got = 0;
  for (std::uint8_t b : stream) {
    reader.feed(&b, 1);
    Decoded d = reader.next();
    if (d.status == DecodeStatus::kFrame) {
      ASSERT_LT(got, frames.size());
      EXPECT_EQ(d.frame, frames[got]);
      ++got;
    } else {
      ASSERT_EQ(d.status, DecodeStatus::kNeedMore);
    }
  }
  EXPECT_EQ(got, frames.size());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, ReaderPoisonSticksUntilReset) {
  FrameReader reader;
  Bytes garbage{0x00, 0x00, 0x00, 0x10, 0xDE, 0xAD, 0xBE, 0xEF,
                0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                0x09, 0x0A, 0x0B, 0x0C};
  reader.feed(garbage);
  EXPECT_EQ(reader.next().status, DecodeStatus::kBadFrame);
  EXPECT_TRUE(reader.poisoned());
  // Feeding a perfectly valid frame cannot heal a mis-framed stream.
  Frame f;
  f.type = FrameType::kPong;
  reader.feed(encode_frame(f));
  EXPECT_EQ(reader.next().status, DecodeStatus::kBadFrame);

  reader.reset();
  reader.feed(encode_frame(f));
  Decoded d = reader.next();
  ASSERT_EQ(d.status, DecodeStatus::kFrame);
  EXPECT_EQ(d.frame.type, FrameType::kPong);
}

// --- Word / batch payload codec (wire v3) ------------------------------------

TEST(Wire, WordCodecRoundTripsAndEnforcesBounds) {
  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command"};
  EXPECT_EQ(decode_word(encode_word(word)), word);
  EXPECT_EQ(decode_word(encode_word({})), std::vector<std::string>{});

  // Separators and illegal bytes inside a symbol are structured failures.
  EXPECT_FALSE(decode_word("power_on,,paging").has_value());
  EXPECT_FALSE(decode_word("power on").has_value());
  EXPECT_FALSE(decode_word("power_on;paging").has_value());

  // One symbol over kMaxSymbolChars, and one word over kMaxWordSymbols.
  EXPECT_FALSE(decode_word(std::string(kMaxSymbolChars + 1, 'a')).has_value());
  std::string too_many;
  for (std::size_t i = 0; i <= kMaxWordSymbols; ++i) {
    if (!too_many.empty()) too_many += ',';
    too_many += 'x';
  }
  EXPECT_FALSE(decode_word(too_many).has_value());
  EXPECT_TRUE(decode_word(std::string(kMaxSymbolChars, 'a')).has_value());
}

TEST(Wire, BatchCodecRoundTripsAndEnforcesBounds) {
  const std::vector<std::vector<std::string>> words = {
      {"power_on"},
      {"power_on", "authentication_request"},
      {"paging", "detach_request", "attach_reject"},
  };
  EXPECT_EQ(decode_batch(encode_batch(words), kMaxBatchWords), words);

  // The same payload refused once the caller's cap is below the word count.
  EXPECT_FALSE(decode_batch(encode_batch(words), 2).has_value());
  // A malformed word inside an otherwise fine batch poisons the whole batch.
  EXPECT_FALSE(decode_batch("power_on;bad word;paging", kMaxBatchWords).has_value());
}

TEST(Wire, BatchAckCodecRoundTripsMixedResults) {
  std::vector<BatchItem> items(3);
  items[0].ok = true;
  items[0].outputs = {"null", "authentication_response"};
  items[1].ok = false;
  items[1].error = kReasonBadWord;
  items[2].ok = true;  // empty word → empty outputs
  std::optional<std::vector<BatchItem>> back =
      decode_batch_ack(encode_batch_ack(items), items.size());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), items.size());
  EXPECT_TRUE((*back)[0].ok);
  EXPECT_EQ((*back)[0].outputs, items[0].outputs);
  EXPECT_FALSE((*back)[1].ok);
  EXPECT_EQ((*back)[1].error, kReasonBadWord);
  EXPECT_TRUE((*back)[2].ok);
  EXPECT_TRUE((*back)[2].outputs.empty());

  // More items than the request had words → a lying server, refused.
  EXPECT_FALSE(decode_batch_ack(encode_batch_ack(items), 2).has_value());
}

TEST(Wire, BatchTokenNegotiationRoundTrips) {
  EXPECT_EQ(with_batch_token("cls", 16), "cls batch=16");
  EXPECT_EQ(parse_batch_token("cls batch=16"), 16);
  EXPECT_EQ(strip_batch_token("cls batch=16"), "cls");
  // A v2 peer never sends the token: parse yields 0, strip is the identity.
  EXPECT_EQ(parse_batch_token("cls"), 0);
  EXPECT_EQ(strip_batch_token("cls"), "cls");
  EXPECT_EQ(with_batch_token("cls", 0), "cls");
  // Garbage after "batch=" must not parse into a grant.
  EXPECT_EQ(parse_batch_token("cls batch=lots"), 0);
}

// --- Clean loopback transport -------------------------------------------------

TEST(NetTransport, RemoteStepsMatchInProcessSul) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  learner::UeSul local(ue::StackProfile::cls());

  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command", "attach_accept",
                                         "identity_request", "paging"};
  EXPECT_EQ(remote.run(word), local.run(word));
  EXPECT_EQ(remote.server_profile(), "cls");
  EXPECT_EQ(remote.stats().connects, 1);
  EXPECT_EQ(remote.stats().unavailable_answers, 0);
  EXPECT_EQ(remote.breaker(), BreakerState::kClosed);
}

TEST(NetTransport, RemoteLearnByteIdenticalToInProcess) {
  learner::UeSul local(ue::StackProfile::cls());
  learner::LearnResult clean = learner::learn_mealy(local, quick_learn_options());
  ASSERT_TRUE(clean.converged);

  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  learner::LearnResult remote_result = learner::learn_mealy(remote, quick_learn_options());

  ASSERT_TRUE(remote_result.converged);
  EXPECT_FALSE(remote_result.inconclusive);
  EXPECT_EQ(fsm_text(remote_result), fsm_text(clean));
  // Same deterministic query schedule → identical cost metrics too.
  EXPECT_EQ(remote_result.membership_queries, clean.membership_queries);
}

TEST(NetTransport, RemoteConformanceAllPassOnCleanLink) {
  SulServer server(ue::StackProfile::srsue());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  RemoteConformanceReport report = run_remote_conformance(ue::StackProfile::srsue(), remote);
  EXPECT_EQ(report.passed(), report.total());
  EXPECT_TRUE(report.conclusive());
}

TEST(NetTransport, ProfileMismatchIsBehavioralFailNotTransportError) {
  // An oai server answered with a cls reference: divergence must surface as
  // FAIL verdicts (definite), not as inconclusive transport noise.
  SulServer server(ue::StackProfile::oai());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  RemoteConformanceReport report = run_remote_conformance(ue::StackProfile::cls(), remote);
  EXPECT_GT(report.failed(), 0);
  EXPECT_TRUE(report.conclusive());
}

// --- Circuit breaker -----------------------------------------------------------

TEST(NetTransport, DeadServerDegradesStructuredAndOpensBreaker) {
  // Port from a listener we immediately close: connection refused, fast.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  RemoteUeSul remote(client_options(dead_port));
  remote.reset();
  EXPECT_EQ(remote.step("power_on"), learner::kSulUnavailable);
  for (int i = 0; i < 3; ++i) remote.step("paging");
  EXPECT_EQ(remote.breaker(), BreakerState::kOpen);
  EXPECT_GT(remote.stats().breaker_opens, 0);
  EXPECT_GT(remote.stats().unavailable_answers, 0);
}

TEST(NetTransport, LearnAgainstDeadServerIsInconclusiveNotHang) {
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  RemoteUeSul remote(client_options(dead_port));
  learner::LearnResult result = learner::learn_mealy(remote, quick_learn_options());
  EXPECT_TRUE(result.inconclusive);
  EXPECT_FALSE(result.converged);
  EXPECT_NE(result.note.find("sul_unavailable"), std::string::npos);
}

TEST(NetTransport, BreakerHalfOpenProbeRecoversWhenServerReturns) {
  // Open the breaker against a dead port, then bring a server up on that
  // very port and watch the half-open probe close the circuit again.
  std::uint16_t port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    port = listener->port();
  }
  RemoteSulOptions opts = client_options(port);
  opts.breaker_open_seconds = 0.05;
  RemoteUeSul remote(opts);
  remote.reset();
  for (int i = 0; i < 4; ++i) remote.step("power_on");
  ASSERT_EQ(remote.breaker(), BreakerState::kOpen);

  SulServerOptions sopts;
  sopts.port = port;  // SO_REUSEADDR makes the rebind race-free enough
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // past cooldown

  remote.reset();
  EXPECT_NE(remote.step("power_on"), learner::kSulUnavailable);
  EXPECT_EQ(remote.breaker(), BreakerState::kClosed);
  EXPECT_GT(remote.stats().breaker_probes, 0);
}

// --- Reconnect / resync / vote cache -------------------------------------------

TEST(NetTransport, ReconnectMidWordReplaysAndStaysCorrect) {
  SulServerOptions sopts;
  sopts.kill_after_requests = 3;  // dies mid-word, exactly once
  SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());
  RemoteSulOptions copts = client_options(server.port());
  copts.max_batch_words = 0;  // pin the per-symbol v2 replay path specifically
  RemoteUeSul remote(copts);
  learner::UeSul local(ue::StackProfile::cls());

  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command", "attach_accept"};
  EXPECT_EQ(remote.run(word), local.run(word));
  EXPECT_GT(remote.stats().reconnects, 0);
  EXPECT_EQ(remote.stats().unavailable_answers, 0);
}

TEST(NetTransport, VoteCacheAnswersReplaysDuringOutage) {
  auto server = std::make_unique<SulServer>(ue::StackProfile::cls());
  ASSERT_TRUE(server->start());
  std::uint16_t port = server->port();
  RemoteUeSul remote(client_options(port));
  learner::UeSul local(ue::StackProfile::cls());

  const std::vector<std::string> word = {"power_on", "authentication_request"};
  std::vector<std::string> live = remote.run(word);
  EXPECT_EQ(live, local.run(word));

  server.reset();  // outage

  // The replayed word is answered from the vote cache, bit-for-bit.
  EXPECT_EQ(remote.run(word), live);
  EXPECT_GT(remote.stats().cache_fallbacks, 0);
  // A novel word cannot be served from cache: structured degradation.
  std::vector<std::string> novel =
      remote.run({"power_on", "authentication_request", "security_mode_command"});
  EXPECT_EQ(novel.back(), learner::kSulUnavailable);
}

// A minimal hand-rolled server that answers step queries *nondeterministically*
// (alternating outputs), exercising the majority-vote detector.
class FlakyAnswerServer {
 public:
  FlakyAnswerServer() {
    auto listener = TcpListener::listen(0);
    EXPECT_TRUE(listener.has_value());
    listener_ = std::move(*listener);
    thread_ = std::thread([this] { loop(); });
  }
  ~FlakyAnswerServer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  void loop() {
    while (!stop_.load()) {
      auto conn = listener_.accept(0.05);
      if (!conn) continue;
      FrameReader reader;
      Bytes chunk;
      long step_no = 0;
      while (!stop_.load()) {
        Decoded d = reader.next();
        if (d.status == DecodeStatus::kBadFrame) break;
        if (d.status == DecodeStatus::kNeedMore) {
          chunk.clear();
          auto st = conn->recv_some(chunk, 4096, 0.05);
          if (st == TcpConn::RecvStatus::kTimeout) continue;
          if (st != TcpConn::RecvStatus::kData) break;
          reader.feed(chunk);
          continue;
        }
        Frame ack;
        ack.epoch = d.frame.epoch;
        ack.seq = d.frame.seq;
        switch (d.frame.type) {
          case FrameType::kHello:
            ack.type = FrameType::kHelloAck;
            ack.payload = "flaky";
            break;
          case FrameType::kReset:
            ack.type = FrameType::kResetAck;
            break;
          case FrameType::kStep:
            ack.type = FrameType::kStepAck;
            // The lie: the same query gets different answers on different
            // visits. (Alternates per step count, not per word.)
            ack.payload = (++step_no % 2 == 0) ? "null" : "attach_request";
            break;
          case FrameType::kPing:
            ack.type = FrameType::kPong;
            break;
          default:
            ack.type = FrameType::kError;
            break;
        }
        if (!conn->send_all(encode_frame(ack), 0.5)) break;
      }
    }
  }

  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

TEST(NetTransport, MajorityVoteFlagsNondeterministicServer) {
  FlakyAnswerServer server;
  RemoteUeSul remote(client_options(server.port()));
  const std::vector<std::string> word = {"power_on"};

  std::vector<std::string> first = remote.run(word);
  std::vector<std::string> second = remote.run(word);
  std::vector<std::string> third = remote.run(word);
  EXPECT_GT(remote.stats().nondeterministic_queries, 0)
      << "a lying SUT must be flagged, not silently learned from";
  // After disagreement, the majority answer is stable and deterministic.
  EXPECT_EQ(second, third);
}

// Like FlakyAnswerServer, but speaks the v3 word protocol: the hello-ack
// grants a batch so the client routes query_word over kQueryWord, and every
// kWordAck alternates the first output symbol.
class FlakyWordServer {
 public:
  FlakyWordServer() {
    auto listener = TcpListener::listen(0);
    EXPECT_TRUE(listener.has_value());
    listener_ = std::move(*listener);
    thread_ = std::thread([this] { loop(); });
  }
  ~FlakyWordServer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  void loop() {
    while (!stop_.load()) {
      auto conn = listener_.accept(0.05);
      if (!conn) continue;
      FrameReader reader;
      Bytes chunk;
      while (!stop_.load()) {
        Decoded d = reader.next();
        if (d.status == DecodeStatus::kBadFrame) break;
        if (d.status == DecodeStatus::kNeedMore) {
          chunk.clear();
          auto st = conn->recv_some(chunk, 4096, 0.05);
          if (st == TcpConn::RecvStatus::kTimeout) continue;
          if (st != TcpConn::RecvStatus::kData) break;
          reader.feed(chunk);
          continue;
        }
        Frame ack;
        ack.epoch = d.frame.epoch;
        ack.seq = d.frame.seq;
        switch (d.frame.type) {
          case FrameType::kHello:
            ack.type = FrameType::kHelloAck;
            ack.payload = with_batch_token("flaky", kDefaultBatchWords);
            break;
          case FrameType::kReset:
            ack.type = FrameType::kResetAck;
            break;
          case FrameType::kQueryWord: {
            ack.type = FrameType::kWordAck;
            auto word = decode_word(d.frame.payload);
            std::vector<std::string> outs(word ? word->size() : 0, "null");
            if (!outs.empty() && (++word_no_ % 2 != 0)) outs[0] = "attach_request";
            ack.payload = encode_word(outs);
            break;
          }
          case FrameType::kPing:
            ack.type = FrameType::kPong;
            break;
          default:
            ack.type = FrameType::kError;
            break;
        }
        if (!conn->send_all(encode_frame(ack), 0.5)) break;
      }
    }
  }

  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  long word_no_ = 0;
};

TEST(NetTransport, QueryWordFreshBypassesTheVoteCache) {
  FlakyWordServer server;
  RemoteUeSul remote(client_options(server.port()));
  const std::vector<std::string> word = {"power_on", "paging"};

  // The arbitration sampling path sees every raw lie: consecutive fresh
  // queries of the same word surface the alternation unvoted.
  std::vector<std::string> fresh_a = remote.query_word_fresh(word);
  std::vector<std::string> fresh_b = remote.query_word_fresh(word);
  EXPECT_NE(fresh_a, fresh_b) << "fresh samples must bypass the vote cache";

  // The learner-facing path stays vote-stable on the majority answer
  // ("attach_request" wins ties toward the smallest symbol) despite the
  // server alternating underneath.
  std::vector<std::string> voted = remote.query_word(word);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(remote.query_word(word), voted);
  EXPECT_GT(remote.stats().nondeterministic_queries, 0);
}

// --- Heartbeat -----------------------------------------------------------------

TEST(NetTransport, HeartbeatKeepsLinkAliveAndDetectsDeath) {
  auto server = std::make_unique<SulServer>(ue::StackProfile::cls());
  ASSERT_TRUE(server->start());
  RemoteSulOptions opts = client_options(server->port());
  opts.heartbeat_seconds = 0.03;
  RemoteUeSul remote(opts);
  remote.reset();
  ASSERT_NE(remote.step("power_on"), learner::kSulUnavailable);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_GT(remote.stats().heartbeats, 0);
  EXPECT_EQ(remote.stats().heartbeat_failures, 0);

  server.reset();  // silent death: only the heartbeat can notice
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GT(remote.stats().heartbeat_failures, 0);
}

// --- Chaos proxy ----------------------------------------------------------------

ChaosProxyOptions proxy_options(std::uint16_t upstream, ProxyFaultProfile faults,
                                std::uint64_t seed = 0xC4A05) {
  ChaosProxyOptions o;
  o.upstream_port = upstream;
  o.faults = faults;
  o.seed = seed;
  o.max_delay_ms = 2;
  return o;
}

TEST(ChaosProxyNet, InertProxyIsByteTransparent) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  ChaosProxy proxy(proxy_options(server.port(), {}));
  ASSERT_TRUE(proxy.start());

  RemoteUeSul remote(client_options(proxy.port()));
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command", "attach_accept"};
  EXPECT_EQ(remote.run(word), local.run(word));
  EXPECT_EQ(proxy.stats().faults(), 0);
  EXPECT_GT(proxy.stats().chunks, 0);
}

// The acceptance pin: under every *lossless* fault regime, remote learning
// produces an FSM byte-identical to the clean in-process run. Pinned to the
// v2 per-symbol protocol; BatchedProtocol.LearnByteIdenticalUnderLosslessChaos
// runs the same regimes over the v3 word/batch path.
TEST(ChaosProxyNet, LosslessRegimesLearnByteIdentical) {
  learner::UeSul local(ue::StackProfile::cls());
  const std::string clean = fsm_text(learner::learn_mealy(local, quick_learn_options()));

  struct Regime {
    const char* name;
    ProxyFaultProfile faults;
  };
  const Regime regimes[] = {
      {"delay", {.delay = 0.2}},
      {"fragment", {.fragment = 0.15}},
      {"reorder", {.reorder = 0.1}},
      {"combined", {.delay = 0.1, .fragment = 0.1, .reorder = 0.05}},
  };
  for (const Regime& regime : regimes) {
    SulServer server(ue::StackProfile::cls());
    ASSERT_TRUE(server.start());
    ChaosProxy proxy(proxy_options(server.port(), regime.faults));
    ASSERT_TRUE(proxy.start());

    RemoteUeSul remote(per_symbol_options(proxy.port()));
    learner::LearnResult result = learner::learn_mealy(remote, quick_learn_options());
    ASSERT_TRUE(result.converged) << regime.name;
    ASSERT_FALSE(result.inconclusive) << regime.name;
    EXPECT_EQ(fsm_text(result), clean) << regime.name;
    EXPECT_GT(proxy.stats().faults(), 0) << regime.name << ": regime never fired";
  }
}

TEST(ChaosProxyNet, CorruptionIsDetectedNeverConsumed) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  ChaosProxy proxy(proxy_options(server.port(), {.corrupt = 0.08}));
  ASSERT_TRUE(proxy.start());

  RemoteUeSul remote(client_options(proxy.port()));
  RemoteConformanceReport report = run_remote_conformance(ue::StackProfile::cls(), remote);
  // Corrupted frames become framing errors and reconnects; answers that do
  // arrive are CRC-clean, so no scenario can FAIL. (Scenarios may go
  // inconclusive if the link is beyond the retry budget — structured, not
  // wrong.)
  EXPECT_EQ(report.failed(), 0);
  EXPECT_GT(proxy.stats().corrupted, 0);
  EXPECT_GT(remote.stats().framing_errors + remote.stats().rpc_timeouts, 0)
      << "corruption must surface as detected transport errors";
}

TEST(ChaosProxyNet, ConnectionKillRegimeTerminatesStructured) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  ChaosProxy proxy(proxy_options(server.port(), {.reset = 0.02}));
  ASSERT_TRUE(proxy.start());

  RemoteUeSul remote(client_options(proxy.port()));
  RemoteConformanceReport report = run_remote_conformance(ue::StackProfile::cls(), remote);
  // Kills are recoverable (reconnect + replay), so scenarios either pass or
  // exhaust the budget into inconclusive — never FAIL, never hang.
  EXPECT_EQ(report.failed(), 0);
  EXPECT_GT(remote.stats().reconnects + remote.stats().cache_fallbacks, 0);
}

// --- Batched word protocol (wire v3) ---------------------------------------------

// Satellite (a): identical words inside one query_batch() are shipped to the
// server exactly once and every duplicate position still gets the answer.
TEST(BatchedProtocol, QueryBatchDeduplicatesIdenticalWords) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  learner::UeSul local(ue::StackProfile::cls());

  const std::vector<std::string> a = {"power_on"};
  const std::vector<std::string> b = {"power_on", "authentication_request"};
  const std::vector<std::vector<std::string>> words = {a, b, a, b, a};
  const std::vector<std::vector<std::string>> answers = remote.query_batch(words);
  ASSERT_EQ(answers.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(answers[i], local.run(words[i])) << "position " << i;
  }
  EXPECT_EQ(remote.stats().batched_words, 2) << "3 duplicates must not hit the wire";
  EXPECT_EQ(remote.stats().batch_queries, 1);
  server.stop();
  EXPECT_EQ(server.stats().batched_words, 2);
  EXPECT_EQ(server.stats().batch_queries, 1);
}

// The reset-amortization mechanism itself: a batch carrying a prefix chain
// executes with one reset, continuing each word from its predecessor.
TEST(BatchedProtocol, SortedBatchContinuesSharedPrefixesOnServer) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteUeSul remote(client_options(server.port()));
  learner::UeSul local(ue::StackProfile::cls());

  // Request order deliberately scrambled: the server sorts into prefix order
  // for execution but must ack in request order.
  const std::vector<std::vector<std::string>> words = {
      {"power_on", "authentication_request", "security_mode_command"},
      {"power_on"},
      {"power_on", "authentication_request"},
  };
  const std::vector<std::vector<std::string>> answers = remote.query_batch(words);
  ASSERT_EQ(answers.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(answers[i], local.run(words[i])) << "position " << i;
  }
  server.stop();
  EXPECT_EQ(server.stats().prefix_hits, 2) << "two words should continue the chain";
  EXPECT_EQ(server.stats().resets, 1) << "a prefix chain needs exactly one reset";
}

// Satellite (c): batched learning renders byte-identical to the per-symbol
// remote run and to the in-process run, with the same query schedule.
TEST(BatchedProtocol, LearnByteIdenticalToPerSymbolAndInProcess) {
  learner::UeSul local(ue::StackProfile::cls());
  learner::LearnResult clean = learner::learn_mealy(local, quick_learn_options());
  ASSERT_TRUE(clean.converged);

  learner::LearnResult per_symbol;
  {
    SulServer server(ue::StackProfile::cls());
    ASSERT_TRUE(server.start());
    RemoteUeSul remote(per_symbol_options(server.port()));
    per_symbol = learner::learn_mealy(remote, quick_learn_options());
    EXPECT_EQ(remote.negotiated_batch_words(), 0);
    EXPECT_EQ(remote.stats().batch_queries, 0);
  }
  ASSERT_TRUE(per_symbol.converged);
  EXPECT_EQ(fsm_text(per_symbol), fsm_text(clean));

  learner::LearnResult batched;
  {
    SulServer server(ue::StackProfile::cls());
    ASSERT_TRUE(server.start());
    RemoteUeSul remote(client_options(server.port()));
    batched = learner::learn_mealy(remote, quick_learn_options());
    EXPECT_EQ(remote.negotiated_batch_words(), kDefaultBatchWords);
    EXPECT_GT(remote.stats().batch_queries, 0);
    EXPECT_GT(remote.stats().batched_words, 0);
    server.stop();
    EXPECT_GT(server.stats().batch_queries, 0);
    EXPECT_EQ(server.stats().batched_words, remote.stats().batched_words);
  }
  ASSERT_TRUE(batched.converged);
  EXPECT_EQ(fsm_text(batched), fsm_text(clean));
  // The trie cache and dedupe are learner-side and deterministic, so the
  // query schedule — not just the answer set — is identical transport-free.
  EXPECT_EQ(batched.membership_queries, clean.membership_queries);
  EXPECT_EQ(batched.membership_queries, per_symbol.membership_queries);
  EXPECT_EQ(batched.cache_hits, clean.cache_hits);
  EXPECT_EQ(batched.cache_prefix_hits, clean.cache_prefix_hits);
  EXPECT_EQ(batched.nondeterministic_cached, 0);
}

// Satellite (c): the batched path survives every lossless chaos regime with a
// byte-identical FSM, exactly like the per-symbol acceptance pin above.
TEST(BatchedProtocol, LearnByteIdenticalUnderLosslessChaos) {
  learner::UeSul local(ue::StackProfile::cls());
  const std::string clean = fsm_text(learner::learn_mealy(local, quick_learn_options()));

  struct Regime {
    const char* name;
    ProxyFaultProfile faults;
  };
  const Regime regimes[] = {
      {"delay", {.delay = 0.2}},
      {"fragment", {.fragment = 0.15}},
      {"reorder", {.reorder = 0.1}},
      {"combined", {.delay = 0.1, .fragment = 0.1, .reorder = 0.05}},
  };
  for (const Regime& regime : regimes) {
    SulServer server(ue::StackProfile::cls());
    ASSERT_TRUE(server.start());
    ChaosProxy proxy(proxy_options(server.port(), regime.faults));
    ASSERT_TRUE(proxy.start());

    RemoteUeSul remote(client_options(proxy.port()));
    learner::LearnResult result = learner::learn_mealy(remote, quick_learn_options());
    ASSERT_TRUE(result.converged) << regime.name;
    ASSERT_FALSE(result.inconclusive) << regime.name;
    EXPECT_EQ(fsm_text(result), clean) << regime.name;
    EXPECT_GT(remote.stats().batch_queries, 0) << regime.name << ": batching never engaged";
    EXPECT_GT(proxy.stats().faults(), 0) << regime.name << ": regime never fired";
  }
}

// --- Kill-at-every-message sweep -------------------------------------------------

// Satellite (f): for every possible server-crash point k (after the k-th
// application request, both before and after the ack goes out), a
// reconnected remote-conformance run must render byte-identical to the
// uninterrupted in-process reference. This pins the replay/resync design:
// no interruption point leaks, duplicates, or reorders an observation.
// Runs once over the v2 per-symbol protocol (each frame is one request) and
// once over the v3 word protocol (one kQueryWord is 1+len logical requests,
// so a kill can land mid-word on the server and the whole word replays).
void kill_sweep(const ue::StackProfile& profile, bool batched) {
  // Reference: clean remote run (== in-process by RemoteConformanceAllPass),
  // plus the total request count R that bounds the sweep.
  std::string reference;
  long total_requests = 0;
  {
    SulServer server(profile);
    ASSERT_TRUE(server.start());
    RemoteUeSul remote(batched ? client_options(server.port())
                               : per_symbol_options(server.port()));
    reference = run_remote_conformance(profile, remote).render();
    server.stop();
    total_requests = server.stats().requests;
  }
  ASSERT_GT(total_requests, 0);

  for (int before_reply = 0; before_reply <= 1; ++before_reply) {
    for (long k = 1; k <= total_requests; ++k) {
      SulServerOptions sopts;
      sopts.kill_after_requests = k;
      sopts.kill_before_reply = before_reply == 1;
      SulServer server(profile, sopts);
      ASSERT_TRUE(server.start());
      RemoteUeSul remote(batched ? client_options(server.port())
                                 : per_symbol_options(server.port()));
      RemoteConformanceReport report = run_remote_conformance(profile, remote);
      ASSERT_EQ(report.render(), reference)
          << "kill at request " << k << (before_reply ? " (before reply)" : " (after reply)");
      server.stop();
      ASSERT_EQ(server.stats().kills, 1) << "kill point " << k << " never fired";
    }
  }
}

TEST(KillSweep, ConformanceByteIdenticalAtEveryKillPoint) {
  kill_sweep(ue::StackProfile::cls(), /*batched=*/false);
}

TEST(KillSweep, WordProtocolByteIdenticalAtEveryKillPoint) {
  kill_sweep(ue::StackProfile::cls(), /*batched=*/true);
}

// --- TSan-focused concurrency tests ----------------------------------------------
// `ctest -L tsan` (the tsan preset) runs these under ThreadSanitizer: the
// heartbeat thread racing the query path, and server/proxy lifecycle churn
// against in-flight queries.

TEST(NetTsan, HeartbeatRacesQueryPathCleanly) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteSulOptions opts = client_options(server.port());
  opts.heartbeat_seconds = 0.005;  // aggressive: interleave with every query
  RemoteUeSul remote(opts);
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "authentication_request",
                                         "security_mode_command", "attach_accept"};
  const std::vector<std::string> expect = local.run(word);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(remote.run(word), expect);
  }
  // The query loop can outrun the first heartbeat tick; give it a bounded
  // window to fire on the idle link before checking it ever ran.
  for (int i = 0; i < 200 && remote.stats().heartbeats == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(remote.stats().heartbeats, 0);
  EXPECT_EQ(remote.run(word), expect);  // link still healthy after the pings
}

TEST(NetTsan, BatchPipelineRacesHeartbeatCleanly) {
  SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());
  RemoteSulOptions opts = client_options(server.port());
  opts.heartbeat_seconds = 0.005;  // interleave pings with the batch window
  RemoteUeSul remote(opts);
  learner::UeSul local(ue::StackProfile::cls());

  std::vector<std::vector<std::string>> words;
  std::vector<std::vector<std::string>> expect;
  for (const char* first : {"power_on", "paging", "detach_request"}) {
    for (const char* second : {"authentication_request", "identity_request"}) {
      words.push_back({first, second});
      expect.push_back(local.run(words.back()));
    }
  }
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(remote.query_batch(words), expect) << "round " << round;
  }
  EXPECT_GT(remote.stats().batch_queries, 0);
}

TEST(NetTsan, ServerChurnWhileClientQueries) {
  std::uint16_t port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    port = listener->port();
  }
  RemoteSulOptions opts = client_options(port);
  opts.heartbeat_seconds = 0.01;
  opts.attempts_per_query = 2;
  opts.call_deadline_seconds = 0.3;
  RemoteUeSul remote(opts);

  // Server flaps up and down while the client keeps querying; every answer
  // must be either correct or the structured unavailable symbol.
  learner::UeSul local(ue::StackProfile::cls());
  const std::vector<std::string> word = {"power_on", "paging"};
  const std::vector<std::string> expect = local.run(word);
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) {
      SulServerOptions sopts;
      sopts.port = port;
      SulServer server(ue::StackProfile::cls(), sopts);
      if (!server.start()) continue;  // port in TIME_WAIT: treat as down-phase
      std::vector<std::string> got = remote.run(word);
      // Up phase: answers may still degrade if the breaker is cooling down.
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i] == expect[i] || got[i] == learner::kSulUnavailable)
            << "round " << round << " step " << i << ": " << got[i];
      }
      server.stop();
    } else {
      std::vector<std::string> got = remote.run(word);
      for (const std::string& o : got) {
        EXPECT_TRUE(o == expect[&o - got.data()] || o == learner::kSulUnavailable) << o;
      }
    }
  }
}

}  // namespace
}  // namespace procheck::net
