// Conformance-suite tests: the per-profile pass/fail pattern (the deviant
// stacks fail exactly their deviation's security cases), handler coverage,
// and the information-rich log the suite produces for the extractor.
#include <gtest/gtest.h>

#include <map>

#include "instrument/trace_log.h"
#include "testing/conformance.h"

namespace procheck::testing {
namespace {

std::map<std::string, bool> results_by_id(const ConformanceReport& report) {
  std::map<std::string, bool> out;
  for (const TestResult& r : report.results) out[r.id] = r.passed;
  return out;
}

ConformanceReport run_for(const ue::StackProfile& profile) {
  instrument::TraceLogger trace;
  return run_conformance(profile, trace);
}

TEST(Suite, HasTheExpectedCases) {
  const auto& suite = conformance_suite();
  EXPECT_GE(suite.size(), 25u);
  std::set<std::string> ids;
  for (const TestCase& tc : suite) {
    EXPECT_TRUE(ids.insert(tc.id).second) << "duplicate id " << tc.id;
    EXPECT_FALSE(tc.title.empty());
  }
}

TEST(Conformance, ClsPassesAllButTheSharedI6Case) {
  ConformanceReport report = run_for(ue::StackProfile::cls());
  auto results = results_by_id(report);
  for (const auto& [id, passed] : results) {
    if (id == "TC_NAS_SEC_07") {
      // Every analyzed stack answers a replayed SMC (the I6 surface).
      EXPECT_FALSE(passed) << id;
    } else {
      EXPECT_TRUE(passed) << id;
    }
  }
}

TEST(Conformance, SrsFailsItsDeviationCases) {
  auto results = results_by_id(run_for(ue::StackProfile::srsue()));
  EXPECT_FALSE(results.at("TC_NAS_SEC_01"));  // I1: replay accepted
  EXPECT_FALSE(results.at("TC_NAS_SEC_03"));  // I3: equal SQN accepted
  EXPECT_FALSE(results.at("TC_NAS_SEC_04"));  // I4: context kept after reject
  EXPECT_TRUE(results.at("TC_NAS_SEC_02"));   // not an srs deviation
  EXPECT_TRUE(results.at("TC_NAS_SEC_05"));
  // Functional cases still pass.
  EXPECT_TRUE(results.at("TC_NAS_ATT_01"));
  EXPECT_TRUE(results.at("TC_NAS_GUTI_01"));
}

TEST(Conformance, OaiFailsItsDeviationCases) {
  auto results = results_by_id(run_for(ue::StackProfile::oai()));
  EXPECT_FALSE(results.at("TC_NAS_SEC_01"));  // I1: last-message replay accepted
  EXPECT_FALSE(results.at("TC_NAS_SEC_02"));  // I2: plain after context
  EXPECT_FALSE(results.at("TC_NAS_SEC_05"));  // I5: IMSI to plain identity request
  EXPECT_TRUE(results.at("TC_NAS_SEC_03"));   // not an oai deviation
  EXPECT_TRUE(results.at("TC_NAS_SEC_04"));
  EXPECT_TRUE(results.at("TC_NAS_ATT_01"));
}

class CoveragePerProfile : public ::testing::TestWithParam<ue::StackProfile> {};

TEST_P(CoveragePerProfile, AllHandlersExercised) {
  ConformanceReport report = run_for(GetParam());
  EXPECT_DOUBLE_EQ(report.handler_coverage, 1.0)
      << "unexercised: " << (report.unexercised.empty() ? "" : report.unexercised[0]);
  EXPECT_TRUE(report.unexercised.empty());
}

INSTANTIATE_TEST_SUITE_P(Profiles, CoveragePerProfile,
                         ::testing::Values(ue::StackProfile::cls(), ue::StackProfile::srsue(),
                                           ue::StackProfile::oai()),
                         [](const auto& info) { return info.param.name; });

TEST(Conformance, ExpectedHandlersUseProfilePrefixes) {
  auto handlers = expected_ue_handlers(ue::StackProfile::oai());
  bool saw_recv = false;
  bool saw_send = false;
  for (const std::string& h : handlers) {
    saw_recv = saw_recv || h == "emm_recv_attach_accept";
    saw_send = saw_send || h == "emm_send_attach_complete";
  }
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_send);
}

TEST(Conformance, LogContainsTestMarkersAndHandlerEntries) {
  instrument::TraceLogger trace;
  run_conformance(ue::StackProfile::cls(), trace);
  int test_markers = 0;
  int enters = 0;
  int globals = 0;
  int locals = 0;
  for (const instrument::LogRecord& rec : trace.records()) {
    switch (rec.kind) {
      case instrument::LogRecord::Kind::kTestCase:
        ++test_markers;
        break;
      case instrument::LogRecord::Kind::kEnter:
        ++enters;
        break;
      case instrument::LogRecord::Kind::kGlobal:
        ++globals;
        break;
      case instrument::LogRecord::Kind::kLocal:
        ++locals;
        break;
    }
  }
  EXPECT_EQ(test_markers, static_cast<int>(conformance_suite().size()));
  EXPECT_GT(enters, 100);
  EXPECT_GT(globals, 200);
  EXPECT_GT(locals, 50);
}

TEST(Conformance, LogStateValuesUseStandardNames) {
  instrument::TraceLogger trace;
  run_conformance(ue::StackProfile::cls(), trace);
  bool saw_registered = false;
  bool saw_deregistered = false;
  for (const instrument::LogRecord& rec : trace.records()) {
    if (rec.kind != instrument::LogRecord::Kind::kGlobal || rec.name != "emm_state") continue;
    saw_registered = saw_registered || rec.value == "EMM_REGISTERED";
    saw_deregistered = saw_deregistered || rec.value == "EMM_DEREGISTERED";
  }
  EXPECT_TRUE(saw_registered);
  EXPECT_TRUE(saw_deregistered);
}

TEST(Conformance, ReportCounts) {
  ConformanceReport report = run_for(ue::StackProfile::cls());
  EXPECT_EQ(report.total(), static_cast<int>(conformance_suite().size()));
  EXPECT_EQ(report.passed(), report.total() - 1);  // only TC_NAS_SEC_07
}

TEST(Conformance, RunsAreDeterministic) {
  instrument::TraceLogger t1, t2;
  ConformanceReport a = run_conformance(ue::StackProfile::srsue(), t1);
  ConformanceReport b = run_conformance(ue::StackProfile::srsue(), t2);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].passed, b.results[i].passed) << a.results[i].id;
  }
  EXPECT_EQ(t1.records(), t2.records());
}

}  // namespace
}  // namespace procheck::testing
