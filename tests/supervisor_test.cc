// Supervisor and journal tests: crash containment, the retry/degrade
// ladder, watchdog failure classification, crash-safe journal durability
// (kill-point simulation at every byte offset), and the resume determinism
// contract — an interrupted-and-resumed analysis reproduces the
// uninterrupted report byte for byte, at any jobs level.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "checker/prochecker.h"
#include "checker/report.h"
#include "checker/supervisor.h"
#include "common/journal.h"
#include "common/strings.h"

namespace procheck::checker {
namespace {

// --- Shared pipeline fixture (front half runs once) -------------------------

struct Pipeline {
  fsm::Fsm flat;
  threat::ThreatModel tm;
};

const Pipeline& pipeline() {
  static Pipeline* p = [] {
    auto* out = new Pipeline;
    instrument::TraceLogger trace;
    testing::run_conformance(ue::StackProfile::cls(), trace);
    extractor::ExtractionOptions opts;
    opts.initial_state = "EMM_DEREGISTERED";
    opts.chain_substates = false;
    out->flat = extractor::extract_basic(trace.records(),
                                         extractor::ue_signatures(ue::StackProfile::cls()), opts);
    out->tm = ProChecker::build_threat_model(out->flat);
    return out;
  }();
  return *p;
}

std::vector<const PropertyDef*> select(const std::set<std::string>& ids) {
  std::vector<const PropertyDef*> out;
  for (const PropertyDef& p : property_catalog()) {
    if (ids.count(p.id)) out.push_back(&p);
  }
  return out;
}

SupervisedRun run_sup(const std::vector<const PropertyDef*>& sel, const SupervisorOptions& opts,
                      const CegarOptions& cegar) {
  return run_supervised(pipeline().tm, pipeline().flat, sel, {}, cegar, opts);
}

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spill(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void expect_outcomes_equal(const std::vector<PropertyOutcome>& a,
                           const std::vector<PropertyOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // encode_outcome covers the full deterministic slice (verdict, note,
    // refinements, equivalence, counterexample, failure class, attempts).
    EXPECT_EQ(encode_outcome(a[i]), encode_outcome(b[i])) << "property index " << i;
  }
}

// --- Journal durability -----------------------------------------------------

TEST(Journal, RoundTripsPayloadsThroughCommit) {
  const std::string path = tmp_path("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    JournalWriter writer(path);
    EXPECT_EQ(writer.records(), 0u);
    writer.append("{\"a\":1}");
    writer.append("payload with spaces and \"quotes\"");
    ASSERT_TRUE(writer.commit());
    EXPECT_EQ(writer.records(), 2u);
    EXPECT_EQ(writer.pending(), 0u);
  }
  JournalLoad load = load_journal(path);
  EXPECT_TRUE(load.existed);
  EXPECT_EQ(load.dropped, 0u);
  ASSERT_EQ(load.payloads.size(), 2u);
  EXPECT_EQ(load.payloads[0], "{\"a\":1}");
  EXPECT_EQ(load.payloads[1], "payload with spaces and \"quotes\"");

  // A new writer adopts the valid prefix and extends it.
  JournalWriter writer(path);
  EXPECT_EQ(writer.records(), 2u);
  writer.append("third");
  ASSERT_TRUE(writer.commit());
  EXPECT_EQ(load_journal(path).payloads.size(), 3u);
}

TEST(Journal, TornTailAndCorruptionPoisonTheRest) {
  const std::string path = tmp_path("journal_torn.jsonl");
  std::remove(path.c_str());
  {
    JournalWriter writer(path);
    writer.append("first");
    writer.append("second");
    writer.append("third");
    ASSERT_TRUE(writer.commit());
  }
  std::string bytes = slurp(path);

  // Unterminated final line: dropped, earlier records intact.
  spill(path, bytes.substr(0, bytes.size() - 1));
  JournalLoad torn = load_journal(path);
  EXPECT_EQ(torn.payloads, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(torn.dropped, 1u);

  // A flipped byte in the middle line: CRC rejects it, and everything after
  // the first bad line is distrusted (no resurrection of later records).
  std::string corrupt = bytes;
  corrupt[bytes.find("second")] ^= 0x01;
  spill(path, corrupt);
  JournalLoad poisoned = load_journal(path);
  EXPECT_EQ(poisoned.payloads, (std::vector<std::string>{"first"}));
  EXPECT_EQ(poisoned.dropped, 2u);
}

TEST(Journal, EveryByteTruncationRecoversAValidPrefix) {
  const std::string path = tmp_path("journal_killpoint.jsonl");
  std::remove(path.c_str());
  const std::vector<std::string> payloads = {"alpha", "bravo {\"x\":2}", "charlie",
                                             "delta-delta", "echo"};
  {
    JournalWriter writer(path);
    for (const std::string& p : payloads) writer.append(p);
    ASSERT_TRUE(writer.commit());
  }
  const std::string bytes = slurp(path);

  // Expected recovery at each length: the records whose full "crc payload\n"
  // line fits within the prefix.
  std::vector<std::size_t> line_ends;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') line_ends.push_back(i + 1);
  }
  ASSERT_EQ(line_ends.size(), payloads.size());

  const std::string trunc = tmp_path("journal_killpoint_trunc.jsonl");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    spill(trunc, bytes.substr(0, len));
    JournalLoad load = load_journal(trunc);
    std::size_t expect = 0;
    while (expect < line_ends.size() && line_ends[expect] <= len) ++expect;
    ASSERT_EQ(load.payloads.size(), expect) << "truncation at byte " << len;
    for (std::size_t k = 0; k < expect; ++k) {
      EXPECT_EQ(load.payloads[k], payloads[k]) << "truncation at byte " << len;
    }
  }
}

// --- Outcome codec ----------------------------------------------------------

PropertyOutcome sample_outcome() {
  PropertyOutcome o;
  o.attempts = 3;
  o.failure = FailureClass::kBudget;
  o.diagnostics = "diag with \"quotes\"\nand a newline\tand tab";
  o.result.status = PropertyResult::Status::kAttack;
  o.result.property_id = "S99";
  o.result.attack_id = "P9";
  o.result.note = "note \\ with backslash and control \x01 byte";
  o.result.iterations = 4;
  o.result.refinements = {"banned adv_replay_x: stale", "banned adv_inject_y: no key"};
  cpv::EquivalenceVerdict eq;
  eq.distinguishable = true;
  eq.victim_response = "authentication_response";
  eq.other_response = "authentication_failure";
  eq.reason = "responses differ";
  o.result.equivalence = eq;
  mc::CounterExample cex;
  cex.loop_start = 1;
  mc::TraceStep step;
  step.label = "adv_replay_dl_authentication_request";
  step.meta.actor = mc::CommandMeta::Actor::kAdversary;
  step.meta.kind = mc::CommandMeta::Kind::kReplay;
  step.meta.message = "authentication_request";
  step.meta.provenance = 2;
  step.meta.from_state = "A";
  step.meta.to_state = "B";
  step.meta.atoms = {"mac_valid=1", "sqn_ok=1"};
  step.meta.actions = {"authentication_response"};
  step.post = {4, 2, 0, -1, 7};
  cex.steps.push_back(step);
  o.result.counterexample = cex;
  return o;
}

TEST(OutcomeCodec, RoundTripsEveryField) {
  PropertyOutcome o = sample_outcome();
  std::string json = encode_outcome(o);
  std::optional<PropertyOutcome> back = decode_outcome(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->attempts, o.attempts);
  EXPECT_EQ(back->failure, o.failure);
  EXPECT_EQ(back->diagnostics, o.diagnostics);
  EXPECT_EQ(back->result.status, o.result.status);
  EXPECT_EQ(back->result.property_id, o.result.property_id);
  EXPECT_EQ(back->result.attack_id, o.result.attack_id);
  EXPECT_EQ(back->result.note, o.result.note);
  EXPECT_EQ(back->result.iterations, o.result.iterations);
  EXPECT_EQ(back->result.refinements, o.result.refinements);
  ASSERT_TRUE(back->result.equivalence.has_value());
  EXPECT_EQ(back->result.equivalence->reason, o.result.equivalence->reason);
  ASSERT_TRUE(back->result.counterexample.has_value());
  EXPECT_EQ(back->result.counterexample->loop_start, 1);
  ASSERT_EQ(back->result.counterexample->steps.size(), 1u);
  const mc::TraceStep& s = back->result.counterexample->steps[0];
  EXPECT_EQ(s.label, "adv_replay_dl_authentication_request");
  EXPECT_EQ(s.meta.kind, mc::CommandMeta::Kind::kReplay);
  EXPECT_EQ(s.meta.atoms, (std::set<std::string>{"mac_valid=1", "sqn_ok=1"}));
  EXPECT_EQ(s.post, (mc::State{4, 2, 0, -1, 7}));
  // The codec is its own fixpoint: encode(decode(encode(x))) == encode(x).
  EXPECT_EQ(encode_outcome(*back), json);
}

TEST(OutcomeCodec, RejectsMalformedRecords) {
  EXPECT_FALSE(decode_outcome("").has_value());
  EXPECT_FALSE(decode_outcome("not json").has_value());
  EXPECT_FALSE(decode_outcome("{\"kind\":\"header\",\"v\":1}").has_value());
  EXPECT_FALSE(decode_outcome("{\"kind\":\"outcome\"}").has_value());  // no id
  EXPECT_FALSE(
      decode_outcome("{\"kind\":\"outcome\",\"id\":\"S01\",\"status\":\"bogus\"}").has_value());
  std::string valid = encode_outcome(sample_outcome());
  EXPECT_TRUE(decode_outcome(valid).has_value());
  EXPECT_FALSE(decode_outcome(valid.substr(0, valid.size() / 2)).has_value());
}

// --- Containment, retries, classification -----------------------------------

TEST(Supervisor, WorkerCrashContainedToItsProperty) {
  auto sel = select({"S01", "S05", "P04"});
  CegarOptions cegar;
  cegar.max_states = 400000;
  SupervisedRun clean = run_sup(sel, {}, cegar);

  SupervisorOptions opts;
  opts.fault_hook = [](const std::string& id, int) {
    if (id == "S05") throw std::runtime_error("injected worker crash");
  };
  SupervisedRun faulted = run_sup(sel, opts, cegar);

  ASSERT_EQ(faulted.outcomes.size(), 3u);
  for (std::size_t i = 0; i < sel.size(); ++i) {
    const PropertyOutcome& o = faulted.outcomes[i];
    if (sel[i]->id == "S05") {
      EXPECT_EQ(o.result.status, PropertyResult::Status::kInconclusive);
      EXPECT_EQ(o.failure, FailureClass::kException);
      EXPECT_EQ(o.diagnostics, "injected worker crash");
      EXPECT_TRUE(contains(o.result.note, "worker exception"));
    } else {
      // The crash must not perturb the other verdicts at all.
      EXPECT_EQ(encode_outcome(o), encode_outcome(clean.outcomes[i])) << sel[i]->id;
    }
  }
}

TEST(Supervisor, RetryRecoversFromTransientCrash) {
  auto sel = select({"S05"});
  CegarOptions cegar;
  cegar.max_states = 400000;
  SupervisorOptions opts;
  opts.retries = 2;
  opts.backoff_seconds = 0;  // keep the test fast
  opts.fault_hook = [](const std::string&, int attempt) {
    if (attempt == 1) throw std::runtime_error("transient");
  };
  SupervisedRun run = run_sup(sel, opts, cegar);
  ASSERT_EQ(run.outcomes.size(), 1u);
  EXPECT_EQ(run.outcomes[0].result.status, PropertyResult::Status::kVerified);
  EXPECT_EQ(run.outcomes[0].failure, FailureClass::kNone);
  EXPECT_EQ(run.outcomes[0].attempts, 2);
}

TEST(Supervisor, DeadlineTripClassified) {
  auto sel = select({"S05"});
  SupervisorOptions opts;
  opts.deadline_per_property = 1e-9;
  SupervisedRun run = run_sup(sel, opts, {});
  ASSERT_EQ(run.outcomes.size(), 1u);
  EXPECT_EQ(run.outcomes[0].result.status, PropertyResult::Status::kInconclusive);
  EXPECT_EQ(run.outcomes[0].failure, FailureClass::kDeadline);
}

TEST(Supervisor, MemCeilingTripClassified) {
  auto sel = select({"S05"});
  SupervisorOptions opts;
  opts.mem_ceiling_bytes = 1;  // trips on the first cooperative poll
  SupervisedRun run = run_sup(sel, opts, {});
  ASSERT_EQ(run.outcomes.size(), 1u);
  EXPECT_EQ(run.outcomes[0].result.status, PropertyResult::Status::kInconclusive);
  EXPECT_EQ(run.outcomes[0].failure, FailureClass::kMemCeiling);
  EXPECT_TRUE(contains(run.outcomes[0].result.note, "memory ceiling"));
}

TEST(Supervisor, ExhaustedRetriesFallBackToStructuredInconclusive) {
  auto sel = select({"S05"});
  CegarOptions cegar;
  cegar.max_states = 3;  // every attempt hits the state bound
  SupervisorOptions opts;
  opts.retries = 2;
  opts.backoff_seconds = 0;
  opts.degrade_floor_states = 2;
  SupervisedRun run = run_sup(sel, opts, cegar);
  ASSERT_EQ(run.outcomes.size(), 1u);
  const PropertyOutcome& o = run.outcomes[0];
  EXPECT_EQ(o.result.status, PropertyResult::Status::kInconclusive);
  EXPECT_EQ(o.failure, FailureClass::kBudget);
  EXPECT_EQ(o.attempts, 3);
  EXPECT_TRUE(contains(o.result.note, "budget persisted through 3 attempts"))
      << o.result.note;
}

TEST(Supervisor, ParallelOutcomesMatchSequential) {
  auto sel = select({"S01", "S02", "S05", "P01", "P04"});
  CegarOptions cegar;
  cegar.max_states = 400000;
  SupervisorOptions seq;
  seq.jobs = 1;
  SupervisorOptions par;
  par.jobs = 4;
  SupervisedRun a = run_sup(sel, seq, cegar);
  SupervisedRun b = run_sup(sel, par, cegar);
  expect_outcomes_equal(a.outcomes, b.outcomes);
}

TEST(Supervisor, PreCancelledRunShedsEverythingAndJournalsNothing) {
  auto sel = select({"S01", "S05", "P04"});
  const std::string path = tmp_path("journal_cancelled.jsonl");
  std::remove(path.c_str());
  CancelToken token;
  token.cancel();
  SupervisorOptions opts;
  opts.cancel = &token;
  opts.journal_path = path;
  opts.run_tag = "cls";
  SupervisedRun run = run_sup(sel, opts, {});
  EXPECT_EQ(run.cancelled, sel.size());
  EXPECT_EQ(run.journal_records, 0u);  // interruptions are never journaled
  for (const PropertyOutcome& o : run.outcomes) {
    EXPECT_EQ(o.failure, FailureClass::kCancelled);
    EXPECT_EQ(o.result.status, PropertyResult::Status::kInconclusive);
  }
  // Resuming that journal re-verifies everything (nothing was adopted).
  SupervisorOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  resume.run_tag = "cls";
  CegarOptions cegar;
  cegar.max_states = 400000;
  SupervisedRun redo = run_sup(sel, resume, cegar);
  EXPECT_EQ(redo.resumed, 0u);
  EXPECT_EQ(redo.cancelled, 0u);
  EXPECT_EQ(redo.journal_records, sel.size());
}

TEST(Supervisor, HeaderTagMismatchDiscardsForeignJournal) {
  auto sel = select({"P04"});
  const std::string path = tmp_path("journal_tag.jsonl");
  std::remove(path.c_str());
  SupervisorOptions first;
  first.journal_path = path;
  first.run_tag = "cls";
  run_sup(sel, first, {});

  SupervisorOptions other;
  other.journal_path = path;
  other.resume = true;
  other.run_tag = "some-other-profile";
  SupervisedRun run = run_sup(sel, other, {});
  EXPECT_EQ(run.resumed, 0u);  // foreign verdicts never leak in
  EXPECT_TRUE(contains(run.journal_error, "mismatch"));
  EXPECT_EQ(run.journal_records, sel.size());
}

// --- Journal lock and options-hash guards ------------------------------------

TEST(JournalLockTest, SecondAcquireFailsWhileHeldAndSucceedsAfterRelease) {
  const std::string path = tmp_path("journal_lock.jsonl");
  JournalLock first;
  ASSERT_TRUE(first.acquire(path)) << first.error();
  EXPECT_TRUE(first.held());

  JournalLock second;
  EXPECT_FALSE(second.acquire(path));
  EXPECT_TRUE(contains(second.error(), "locked by pid")) << second.error();

  first.release();
  EXPECT_FALSE(first.held());
  EXPECT_TRUE(second.acquire(path)) << second.error();
  second.release();
}

TEST(JournalLockTest, StaleLockFromDeadProcessIsStolen) {
  const std::string path = tmp_path("journal_stale.jsonl");
  // Manufacture a pid that is guaranteed dead: fork a child that exits
  // immediately and reap it, then plant its pid in the lock file.
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  spill(path + ".lock", std::to_string(child) + "\n");

  JournalLock lock;
  EXPECT_TRUE(lock.acquire(path)) << lock.error();
  lock.release();
}

TEST(Supervisor, ConcurrentJournalRunsFailFast) {
  auto sel = select({"P04"});
  const std::string path = tmp_path("journal_concurrent.jsonl");
  std::remove(path.c_str());
  // Stand in for the other live run: hold the lock with our own (live) pid.
  JournalLock holder;
  ASSERT_TRUE(holder.acquire(path)) << holder.error();

  SupervisorOptions opts;
  opts.journal_path = path;
  opts.run_tag = "cls";
  SupervisedRun run = run_sup(sel, opts, {});
  EXPECT_TRUE(run.aborted);
  EXPECT_TRUE(contains(run.abort_reason, "concurrent analyze run")) << run.abort_reason;
  EXPECT_TRUE(run.outcomes.empty());  // refused runs verify nothing

  holder.release();
  SupervisedRun retry = run_sup(sel, opts, {});
  EXPECT_FALSE(retry.aborted);
  EXPECT_EQ(retry.journal_records, sel.size());
}

TEST(Supervisor, ResumeRefusedOnOptionsHashMismatch) {
  auto sel = select({"P04"});
  const std::string path = tmp_path("journal_optshash.jsonl");
  std::remove(path.c_str());
  SupervisorOptions first;
  first.journal_path = path;
  first.run_tag = "cls";
  first.options_hash = "00000000deadbeef";
  ASSERT_FALSE(run_sup(sel, first, {}).aborted);

  SupervisorOptions changed = first;
  changed.resume = true;
  changed.options_hash = "00000000feedface";
  SupervisedRun refused = run_sup(sel, changed, {});
  EXPECT_TRUE(refused.aborted);
  EXPECT_TRUE(contains(refused.abort_reason, "resume refused")) << refused.abort_reason;
  // The diagnostic names both fingerprints so the operator can see *what*
  // diverged rather than guessing.
  EXPECT_TRUE(contains(refused.abort_reason, "00000000deadbeef")) << refused.abort_reason;
  EXPECT_TRUE(contains(refused.abort_reason, "00000000feedface")) << refused.abort_reason;
  EXPECT_EQ(refused.resumed, 0u);

  SupervisorOptions matching = first;
  matching.resume = true;
  SupervisedRun adopted = run_sup(sel, matching, {});
  EXPECT_FALSE(adopted.aborted);
  EXPECT_EQ(adopted.resumed, sel.size());
}

// --- Kill–resume determinism -------------------------------------------------
//
// The core durability property: kill the analysis at ANY byte of the
// journal, resume, and the final outcomes are identical to an uninterrupted
// run. Budgets here are deterministic (state bounds, no wall clock), so
// notes and stats embedded in them are identical run to run.

TEST(Supervisor, KillPointResumeAtEveryByteOffset) {
  auto sel = select({"S01", "S02", "S05", "P04"});
  CegarOptions cegar;
  cegar.max_states = 300;  // small deterministic budget keeps ~10^3 resumes fast

  const std::string ref_path = tmp_path("journal_ref.jsonl");
  std::remove(ref_path.c_str());
  SupervisorOptions ref_opts;
  ref_opts.journal_path = ref_path;
  ref_opts.run_tag = "cls";
  SupervisedRun reference = run_sup(sel, ref_opts, cegar);
  ASSERT_EQ(reference.outcomes.size(), sel.size());
  const std::string bytes = slurp(ref_path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string trunc = tmp_path("journal_resume.jsonl");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    spill(trunc, bytes.substr(0, len));
    SupervisorOptions opts;
    opts.journal_path = trunc;
    opts.resume = true;
    opts.run_tag = "cls";
    // Exercise both fan-out shapes across the sweep.
    opts.jobs = len % 7 == 0 ? 4 : 1;
    SupervisedRun resumed = run_sup(sel, opts, cegar);
    ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size()) << "kill at byte " << len;
    for (std::size_t i = 0; i < resumed.outcomes.size(); ++i) {
      ASSERT_EQ(encode_outcome(resumed.outcomes[i]), encode_outcome(reference.outcomes[i]))
          << "kill at byte " << len << ", property " << sel[i]->id;
    }
    EXPECT_LE(resumed.resumed, sel.size());
  }
  // Sanity: a full journal adopts everything.
  spill(trunc, bytes);
  SupervisorOptions full;
  full.journal_path = trunc;
  full.resume = true;
  full.run_tag = "cls";
  SupervisedRun adopted = run_sup(sel, full, cegar);
  EXPECT_EQ(adopted.resumed, sel.size());
}

// --- End-to-end: analyze --resume reproduces the report ----------------------

TEST(AnalyzeResume, ReportByteIdenticalAfterInterruptAndResume) {
  AnalysisOptions options;
  options.only_properties = {"S01", "P01", "P04"};
  options.jobs = 1;
  const std::string path = tmp_path("analyze_journal.jsonl");
  std::remove(path.c_str());
  options.journal_path = path;
  ImplementationReport ref = ProChecker::analyze(ue::StackProfile::cls(), options);
  const std::string verdicts = render_verdicts(ref);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 0u);

  // A handful of representative kill points (the per-byte sweep lives in
  // the supervisor-level test where re-verification is cheap).
  for (std::size_t len : {std::size_t{0}, bytes.size() / 3, 2 * bytes.size() / 3,
                          bytes.size() - 1, bytes.size()}) {
    spill(path, bytes.substr(0, len));
    AnalysisOptions resume = options;
    resume.resume = true;
    resume.jobs = len % 2 == 0 ? 1 : 4;
    ImplementationReport rep = ProChecker::analyze(ue::StackProfile::cls(), resume);
    EXPECT_EQ(render_verdicts(rep), verdicts) << "kill at byte " << len;
  }
}

TEST(AnalyzeResume, InjectedCrashDegradesOnePropertyOthersVerify) {
  // The acceptance scenario: one property's worker crashes on every attempt;
  // the report still carries a verdict row for it (structured inconclusive)
  // and every other property is unaffected.
  AnalysisOptions options;
  options.only_properties = {"S01", "S05", "P04"};
  options.jobs = 2;
  options.retries = 1;
  options.retry_backoff_seconds = 0;
  options.fault_hook = [](const std::string& id, int) {
    if (id == "S05") throw std::runtime_error("induced OOM");
  };
  ImplementationReport rep = ProChecker::analyze(ue::StackProfile::cls(), options);
  ASSERT_EQ(rep.results.size(), 3u);
  EXPECT_EQ(rep.contained_count(), 1);
  std::map<std::string, const PropertyResult*> by_id;
  for (const PropertyResult& r : rep.results) by_id[r.property_id] = &r;
  EXPECT_EQ(by_id["S05"]->status, PropertyResult::Status::kInconclusive);
  EXPECT_TRUE(contains(by_id["S05"]->note, "worker exception"));
  EXPECT_EQ(by_id["S01"]->status, PropertyResult::Status::kAttack);
  EXPECT_EQ(by_id["P04"]->status, PropertyResult::Status::kNotApplicable);
  // The verdict block names the contained failure.
  EXPECT_TRUE(contains(render_verdicts(rep), "contained failures: S05:exception(2)"));
}

TEST(AnalyzeResume, RefusedWhenVerdictShapingOptionsChange) {
  AnalysisOptions options;
  options.only_properties = {"P04"};
  options.jobs = 1;
  const std::string path = tmp_path("analyze_optshash.jsonl");
  std::remove(path.c_str());
  options.journal_path = path;
  ImplementationReport ref = ProChecker::analyze(ue::StackProfile::cls(), options);
  ASSERT_FALSE(ref.aborted);

  // A changed MC budget can change journaled verdicts: resuming must refuse
  // rather than silently mix budgets.
  AnalysisOptions changed = options;
  changed.resume = true;
  changed.max_states = 1234;
  ImplementationReport refused = ProChecker::analyze(ue::StackProfile::cls(), changed);
  EXPECT_TRUE(refused.aborted);
  EXPECT_TRUE(contains(refused.abort_reason, "resume refused")) << refused.abort_reason;
  EXPECT_TRUE(refused.results.empty());

  // jobs is deliberately outside the fingerprint (reports are byte-identical
  // at any parallelism): a different fan-out still resumes.
  AnalysisOptions same = options;
  same.resume = true;
  same.jobs = 4;
  ImplementationReport resumed = ProChecker::analyze(ue::StackProfile::cls(), same);
  EXPECT_FALSE(resumed.aborted);
  EXPECT_EQ(resumed.resumed_count, ref.results.size());
}

TEST(AnalyzeResume, OptionsHashCoversVerdictKnobsOnly) {
  AnalysisOptions a;
  a.only_properties = {"S01", "P04"};
  a.jobs = 1;
  AnalysisOptions b = a;
  b.jobs = 8;
  b.journal_path = "elsewhere.jsonl";  // plumbing: excluded
  b.resume = true;
  EXPECT_EQ(analysis_options_hash(a, ue::StackProfile::cls()),
            analysis_options_hash(b, ue::StackProfile::cls()));

  AnalysisOptions c = a;
  c.max_states /= 2;
  EXPECT_NE(analysis_options_hash(c, ue::StackProfile::cls()),
            analysis_options_hash(a, ue::StackProfile::cls()));

  // The profile's freshness-limit mitigation shapes verdicts (the ablation
  // knob) → covered by the fingerprint.
  ue::StackProfile mitigated = ue::StackProfile::cls();
  mitigated.sqn_freshness_limit = 64;
  EXPECT_NE(analysis_options_hash(a, mitigated),
            analysis_options_hash(a, ue::StackProfile::cls()));
}

}  // namespace
}  // namespace procheck::checker
