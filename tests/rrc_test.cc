// RRC layer tests: the C4 "layered protocol" demonstration — one run, two
// independently instrumented layers, two independently extracted FSMs; the
// NAS model is unchanged by the encapsulation.
#include <gtest/gtest.h>

#include "extractor/extractor.h"
#include "rrc/rrc_stack.h"
#include "testing/conformance.h"
#include "ue/emm_state.h"

namespace procheck::rrc {
namespace {

struct Rig {
  mme::MmeNas mme;
  RrcUe ue;
  RrcEnb enb;
  Rig(instrument::TraceLogger* rrc_trace = nullptr,
      instrument::TraceLogger* nas_trace = nullptr)
      : mme(0x4D4D45ULL, nullptr),
        ue(ue::StackProfile::cls(), testing::kTestKey, testing::kTestImsi, rrc_trace,
           nas_trace),
        enb(&mme, /*conn_id=*/1, rrc_trace) {
    mme.provision_subscriber(testing::kTestImsi, testing::kTestKey);
  }
  void attach() { exchange(ue, enb, ue.power_on()); }
};

TEST(RrcPduCodec, RoundTripWithAndWithoutNas) {
  RrcPdu plain;
  plain.type = RrcMsgType::kConnectionRequest;
  auto back = RrcPdu::decode(plain.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);

  RrcPdu carrying;
  carrying.type = RrcMsgType::kDlInformationTransfer;
  nas::NasPdu inner;
  inner.count = 7;
  inner.payload = {1, 2, 3};
  carrying.nas = inner;
  auto back2 = RrcPdu::decode(carrying.encode());
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(*back2, carrying);
}

TEST(RrcPduCodec, RejectsGarbage) {
  EXPECT_FALSE(RrcPdu::decode({}).has_value());
  EXPECT_FALSE(RrcPdu::decode({0xFF, 0x00}).has_value());
  EXPECT_FALSE(RrcPdu::decode({0x00, 0x02}).has_value());  // bad nas flag
}

TEST(RrcAttach, NasAttachCompletesThroughTheRrcLayer) {
  Rig rig;
  rig.attach();
  EXPECT_EQ(rig.ue.state(), RrcState::kConnected);
  EXPECT_EQ(rig.ue.as_security_activated(), 1);
  // The encapsulated NAS stack went through the full attach.
  EXPECT_TRUE(ue::is_registered(rig.ue.nas().state()));
  EXPECT_TRUE(rig.ue.nas().security().valid);
  EXPECT_EQ(rig.mme.state(1), mme::MmeState::kRegistered);
}

TEST(RrcAttach, ReleaseReturnsToIdle) {
  Rig rig;
  rig.attach();
  RrcPdu release;
  release.type = RrcMsgType::kConnectionRelease;
  rig.ue.handle_downlink(release);
  EXPECT_EQ(rig.ue.state(), RrcState::kIdle);
  EXPECT_EQ(rig.ue.as_security_activated(), 0);
  // NAS state is untouched by an RRC release (it lives above).
  EXPECT_TRUE(ue::is_registered(rig.ue.nas().state()));
}

TEST(RrcAttach, SetupIgnoredWhenNotConnecting) {
  Rig rig;
  RrcPdu setup;
  setup.type = RrcMsgType::kConnectionSetup;
  EXPECT_TRUE(rig.ue.handle_downlink(setup).empty());
  EXPECT_EQ(rig.ue.state(), RrcState::kIdle);
}

// --- C4: per-layer extraction ---------------------------------------------------

extractor::Signatures rrc_signatures() {
  extractor::Signatures sigs;
  for (std::string_view s : kRrcStateNames) sigs.state_signatures.emplace_back(s);
  sigs.incoming_prefixes = {"recv_"};
  sigs.outgoing_prefixes = {"send_"};
  return sigs;
}

TEST(LayeredExtraction, TwoLayersTwoIndependentMachines) {
  instrument::TraceLogger rrc_trace;
  instrument::TraceLogger nas_trace;
  Rig rig(&rrc_trace, &nas_trace);
  rig.attach();

  // Layer 1: the RRC machine over RRC state names.
  extractor::ExtractionOptions rrc_opts;
  rrc_opts.initial_state = "RRC_IDLE";
  fsm::Fsm rrc_fsm = extractor::extract(rrc_trace.records(), rrc_signatures(), rrc_opts);
  EXPECT_EQ(rrc_fsm.states(),
            (std::set<std::string>{"RRC_IDLE", "RRC_CONNECTING", "RRC_CONNECTED"}));
  EXPECT_TRUE(rrc_fsm.conditions().count("rrc_connection_setup"));
  EXPECT_TRUE(rrc_fsm.actions().count("rrc_connection_setup_complete"));
  // No NAS vocabulary leaks into the RRC model.
  EXPECT_FALSE(rrc_fsm.conditions().count("attach_accept"));

  // Layer 2: the NAS machine, extracted from its own log.
  extractor::ExtractionOptions nas_opts;
  nas_opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm nas_fsm = extractor::extract(
      nas_trace.records(), extractor::ue_signatures(ue::StackProfile::cls()), nas_opts);
  EXPECT_TRUE(nas_fsm.conditions().count("attach_accept"));
  EXPECT_FALSE(nas_fsm.conditions().count("rrc_connection_setup"));
  EXPECT_TRUE(nas_fsm.states().count("EMM_REGISTERED"));
}

TEST(LayeredExtraction, NasModelUnchangedByEncapsulation) {
  // The attach-path NAS transitions extracted through the RRC layer equal
  // the ones extracted from a direct (testbed) attach.
  instrument::TraceLogger through_rrc;
  {
    Rig rig(nullptr, &through_rrc);
    rig.attach();
  }
  instrument::TraceLogger direct;
  {
    testing::Testbed tb(&direct);
    int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
    tb.power_on(conn);
    tb.run_until_quiet();
  }
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  fsm::Fsm a = extractor::extract(through_rrc.records(), sigs, opts);
  fsm::Fsm b = extractor::extract(direct.records(), sigs, opts);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace procheck::rrc
