// Cryptographic-protocol-verifier tests: the Dolev–Yao term algebra and
// knowledge saturation, the LTE feasibility judgments used by the CEGAR
// loop, and the observational-equivalence (linkability) queries.
#include <gtest/gtest.h>

#include "checker/baseline.h"
#include "cpv/knowledge.h"
#include "cpv/lte_crypto.h"
#include "cpv/term.h"

namespace procheck::cpv {
namespace {

// --- Terms -------------------------------------------------------------------

TEST(Term, EqualityAndOrdering) {
  Term a = Term::name("k");
  Term b = Term::name("k");
  Term c = Term::name("m");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c || c < a);
  Term f = Term::pair(a, c);
  Term g = Term::pair(a, c);
  EXPECT_EQ(f, g);
  EXPECT_FALSE(f == a);
}

TEST(Term, ToString) {
  EXPECT_EQ(Term::name("k").to_string(), "k");
  EXPECT_EQ(Term::senc(Term::name("m"), Term::name("k")).to_string(), "senc(m, k)");
  EXPECT_EQ(Term::pair(Term::name("a"), Term::name("b")).to_string(), "pair(a, b)");
}

TEST(Term, NameVsNullaryFunctionDiffer) {
  EXPECT_FALSE(Term::name("f") == Term::func("f", {}));
}

// --- Knowledge saturation ----------------------------------------------------

TEST(Knowledge, LearnedTermsAreDerivable) {
  Knowledge k;
  k.learn(Term::name("m"));
  EXPECT_TRUE(k.derivable(Term::name("m")));
  EXPECT_FALSE(k.derivable(Term::name("secret")));
}

TEST(Knowledge, PairsDecompose) {
  Knowledge k;
  k.learn(Term::pair(Term::name("a"), Term::name("b")));
  EXPECT_TRUE(k.derivable(Term::name("a")));
  EXPECT_TRUE(k.derivable(Term::name("b")));
}

TEST(Knowledge, NestedPairsDecompose) {
  Knowledge k;
  k.learn(Term::pair(Term::pair(Term::name("a"), Term::name("b")), Term::name("c")));
  EXPECT_TRUE(k.derivable(Term::name("a")));
  EXPECT_TRUE(k.derivable(Term::name("c")));
}

TEST(Knowledge, EncryptionOpensOnlyWithKey) {
  Knowledge k;
  k.learn(Term::senc(Term::name("m"), Term::name("key")));
  EXPECT_FALSE(k.derivable(Term::name("m")));
  k.learn(Term::name("key"));
  EXPECT_TRUE(k.derivable(Term::name("m")));
}

TEST(Knowledge, EncryptionUnderDerivedKeyOpens) {
  // Key arrives inside a pair: saturation must chain analysis steps.
  Knowledge k;
  k.learn(Term::senc(Term::name("m"), Term::name("key")));
  k.learn(Term::pair(Term::name("key"), Term::name("junk")));
  EXPECT_TRUE(k.derivable(Term::name("m")));
}

TEST(Knowledge, MacIsOneWay) {
  Knowledge k;
  k.learn(Term::mac(Term::name("m"), Term::name("key")));
  EXPECT_FALSE(k.derivable(Term::name("m")));
  EXPECT_FALSE(k.derivable(Term::name("key")));
}

TEST(Knowledge, SynthesisComposesKnownParts) {
  Knowledge k;
  k.learn(Term::name("a"));
  k.learn(Term::name("b"));
  EXPECT_TRUE(k.derivable(Term::pair(Term::name("a"), Term::name("b"))));
  EXPECT_TRUE(k.derivable(Term::senc(Term::name("a"), Term::name("b"))));
  EXPECT_TRUE(k.derivable(Term::mac(Term::name("a"), Term::name("b"))));
  // A MAC under an unknown key is not synthesizable.
  EXPECT_FALSE(k.derivable(Term::mac(Term::name("a"), Term::name("k_nas_int"))));
}

TEST(Knowledge, ReplayedCiphertextForwardableWithoutKey) {
  // The attacker can re-send what it saw even if it cannot open it.
  Knowledge k;
  Term blob = Term::senc(Term::name("m"), Term::name("key"));
  k.learn(blob);
  EXPECT_TRUE(k.derivable(blob));
  EXPECT_FALSE(k.derivable(Term::name("m")));
}

TEST(Knowledge, SaturationIsIncremental) {
  Knowledge k;
  k.learn(Term::senc(Term::name("m"), Term::name("key")));
  EXPECT_FALSE(k.derivable(Term::name("m")));
  k.learn(Term::name("key"));  // triggers re-saturation
  EXPECT_TRUE(k.derivable(Term::name("m")));
  EXPECT_GE(k.saturated().size(), 3u);
}

// --- LTE feasibility judgments -------------------------------------------------

mc::CommandMeta deliver(std::string message, std::int32_t prov,
                        std::set<std::string> atoms = {}) {
  mc::CommandMeta meta;
  meta.actor = mc::CommandMeta::Actor::kUe;
  meta.kind = mc::CommandMeta::Kind::kDeliver;
  meta.message = std::move(message);
  meta.provenance = prov;
  meta.atoms = std::move(atoms);
  return meta;
}

TEST(LteCrypto, GenuineAlwaysFeasible) {
  LteCryptoModel crypto;
  EXPECT_TRUE(crypto.judge_delivery(deliver("attach_accept", mc::kProvGenuine,
                                            {"mac_valid=1"}))
                  .feasible);
}

TEST(LteCrypto, FabricatedPlainFeasible) {
  LteCryptoModel crypto;
  StepVerdict v =
      crypto.judge_delivery(deliver("attach_reject", mc::kProvFabricated,
                                    {"sec_hdr=plain_nas", "cause=illegal_ue"}));
  EXPECT_TRUE(v.feasible);
}

TEST(LteCrypto, FabricatedProtectedInfeasible) {
  LteCryptoModel crypto;
  StepVerdict v = crypto.judge_delivery(
      deliver("attach_accept", mc::kProvFabricated,
              {"sec_hdr=integrity_protected_ciphered", "mac_valid=1"}));
  EXPECT_FALSE(v.feasible);
  EXPECT_NE(v.reason.find("mac"), std::string::npos);
}

TEST(LteCrypto, FabricatedWithIntegrityFlagInfeasible) {
  LteCryptoModel crypto;
  mc::CommandMeta meta = deliver("security_mode_complete", mc::kProvFabricated,
                                 {"integrity_ok=1"});
  meta.actor = mc::CommandMeta::Actor::kMme;
  EXPECT_FALSE(crypto.judge_delivery(meta).feasible);
}

TEST(LteCrypto, FabricatedValidResInfeasible) {
  LteCryptoModel crypto;
  mc::CommandMeta meta =
      deliver("authentication_response", mc::kProvFabricated, {"res_valid=1"});
  meta.actor = mc::CommandMeta::Actor::kMme;
  EXPECT_FALSE(crypto.judge_delivery(meta).feasible);
}

TEST(LteCrypto, ReplayedValidResInfeasible) {
  // RES is bound to the outstanding RAND.
  LteCryptoModel crypto;
  mc::CommandMeta meta =
      deliver("authentication_response", mc::kProvReplayed, {"res_valid=1"});
  meta.actor = mc::CommandMeta::Actor::kMme;
  EXPECT_FALSE(crypto.judge_delivery(meta).feasible);
}

TEST(LteCrypto, ReplayedProtectedMessageFeasible) {
  // A verbatim replay carries a valid MAC (only the COUNT is stale).
  LteCryptoModel crypto;
  EXPECT_TRUE(crypto.judge_delivery(
                  deliver("attach_accept", mc::kProvReplayed,
                          {"sec_hdr=integrity_protected_ciphered", "replay_accepted=1"}))
                  .feasible);
}

TEST(LteCrypto, StaleSqnReplayFeasibleWithoutFreshnessLimit) {
  // The P1 judgment, decided by running the real Annex C implementation.
  LteCryptoModel crypto;
  EXPECT_TRUE(crypto.stale_sqn_accepted());
  StepVerdict v = crypto.judge_delivery(deliver(
      "authentication_request", mc::kProvReplayed, {"sqn_ok=1", "sec_hdr=plain_nas"}));
  EXPECT_TRUE(v.feasible);
}

TEST(LteCrypto, StaleSqnReplayInfeasibleWithFreshnessLimit) {
  LteCryptoModel::Options options;
  options.usim_freshness_limit = true;
  LteCryptoModel crypto(options);
  EXPECT_FALSE(crypto.stale_sqn_accepted());
  StepVerdict v = crypto.judge_delivery(deliver(
      "authentication_request", mc::kProvReplayed, {"sqn_ok=1", "sec_hdr=plain_nas"}));
  EXPECT_FALSE(v.feasible);
}

TEST(LteCrypto, EqualSqnJudgment) {
  EXPECT_TRUE(LteCryptoModel::equal_sqn_accepted(/*accept_equal_deviation=*/true));
  EXPECT_FALSE(LteCryptoModel::equal_sqn_accepted(/*accept_equal_deviation=*/false));
}

TEST(LteCrypto, CounterResetReplayFeasible) {
  // The I3 transition is the implementation's own logged behavior.
  LteCryptoModel crypto;
  StepVerdict v = crypto.judge_delivery(
      deliver("authentication_request", mc::kProvReplayed,
              {"sqn_ok=1", "counter_reset=1", "sec_hdr=plain_nas"}));
  EXPECT_TRUE(v.feasible);
}

TEST(LteCrypto, AdversaryChannelActionsAlwaysFeasible) {
  LteCryptoModel crypto;
  mc::CommandMeta drop;
  drop.actor = mc::CommandMeta::Actor::kAdversary;
  drop.kind = mc::CommandMeta::Kind::kDrop;
  EXPECT_TRUE(crypto.judge_delivery(drop).feasible);
}

TEST(LteCrypto, AttackerKnowledgeExcludesKeys) {
  LteCryptoModel crypto;
  EXPECT_FALSE(crypto.attacker_knowledge().derivable(Term::name("k_nas_int")));
  EXPECT_FALSE(crypto.attacker_knowledge().derivable(Term::name("k_permanent")));
  EXPECT_TRUE(crypto.attacker_knowledge().derivable(Term::name("nas_pdu_skeleton")));
}

// --- Observational equivalence --------------------------------------------------

fsm::Fsm linkable_auth_fsm() {
  fsm::Fsm m;
  m.set_initial("R");
  fsm::Transition accept;
  accept.from = accept.to = "R";
  accept.conditions = {"authentication_request", "sqn_ok=1", "mac_valid=1"};
  accept.actions = {"authentication_response"};
  m.add_transition(accept);
  fsm::Transition sync;
  sync.from = sync.to = "R";
  sync.conditions = {"authentication_request", "sqn_ok=0", "mac_valid=1",
                     "failure_cause=synch_failure"};
  sync.actions = {"authentication_failure"};
  m.add_transition(sync);
  fsm::Transition macfail;
  macfail.from = macfail.to = "R";
  macfail.conditions = {"authentication_request", "mac_valid=0",
                        "failure_cause=mac_failure"};
  macfail.actions = {"authentication_failure"};
  m.add_transition(macfail);
  return m;
}

TEST(Equivalence, P2VictimDistinguishableByResponseType) {
  LteCryptoModel crypto;
  EquivalenceVerdict v =
      crypto.distinguishability(linkable_auth_fsm(), "authentication_request", {"sqn_ok=1"});
  EXPECT_TRUE(v.distinguishable);
  EXPECT_NE(v.victim_response.find("authentication_response"), std::string::npos);
  EXPECT_NE(v.other_response.find("authentication_failure"), std::string::npos);
}

TEST(Equivalence, PR06VictimDistinguishableByFailureCause) {
  // Both victim and others answer authentication_failure, but the cause
  // field differs — the 3G linkability attack's observable.
  LteCryptoModel crypto;
  EquivalenceVerdict v =
      crypto.distinguishability(linkable_auth_fsm(), "authentication_request", {"sqn_ok=0"});
  EXPECT_TRUE(v.distinguishable);
  EXPECT_NE(v.victim_response.find("synch_failure"), std::string::npos);
  EXPECT_NE(v.other_response.find("mac_failure"), std::string::npos);
}

TEST(Equivalence, NonVictimSpecificBranchIsUniform) {
  // A plain message every UE processes identically (P22's judgment).
  LteCryptoModel crypto;
  fsm::Fsm m;
  m.set_initial("R");
  fsm::Transition t;
  t.from = t.to = "R";
  t.conditions = {"detach_request", "sec_hdr=plain_nas"};
  t.actions = {"detach_accept"};
  m.add_transition(t);
  EquivalenceVerdict v = crypto.distinguishability(m, "detach_request", {});
  EXPECT_FALSE(v.distinguishable);
}

TEST(Equivalence, UniformNullResponsesNotDistinguishable) {
  // P11's judgment: victim and others both stay silent.
  LteCryptoModel crypto;
  fsm::Fsm m;
  m.set_initial("R");
  fsm::Transition t;
  t.from = t.to = "R";
  t.conditions = {"attach_accept", "replay_accepted=1", "state_ok=0"};
  t.actions = {fsm::kNullAction};
  m.add_transition(t);
  EquivalenceVerdict v = crypto.distinguishability(m, "attach_accept", {"replay_accepted=1"});
  EXPECT_FALSE(v.distinguishable);
}

TEST(Equivalence, MissingVictimBranchNotDistinguishable) {
  LteCryptoModel crypto;
  fsm::Fsm m;
  m.set_initial("R");
  EquivalenceVerdict v = crypto.distinguishability(m, "paging", {"identity_match=1"});
  EXPECT_FALSE(v.distinguishable);
}

TEST(Equivalence, I6SmcReplayDistinguishable) {
  LteCryptoModel crypto;
  fsm::Fsm m;
  m.set_initial("R");
  fsm::Transition victim;
  victim.from = victim.to = "R";
  victim.conditions = {"security_mode_command", "smc_replay=1", "mac_valid=1"};
  victim.actions = {"security_mode_complete"};
  m.add_transition(victim);
  fsm::Transition other;
  other.from = other.to = "R";
  other.conditions = {"security_mode_command", "mac_valid=0"};
  other.actions = {"security_mode_reject"};
  m.add_transition(other);
  EquivalenceVerdict v =
      crypto.distinguishability(m, "security_mode_command", {"smc_replay=1"});
  EXPECT_TRUE(v.distinguishable);
}

}  // namespace
}  // namespace procheck::cpv
