// Report-renderer tests: the markdown output a vendor reads.
#include <gtest/gtest.h>

#include "checker/report.h"
#include "common/strings.h"

namespace procheck::checker {
namespace {

const ImplementationReport& srs_report() {
  static const ImplementationReport rep = [] {
    AnalysisOptions options;
    options.only_properties = {"S01", "S05", "S07", "S20", "P01", "P04"};
    return ProChecker::analyze(ue::StackProfile::srsue(), options);
  }();
  return rep;
}

TEST(Report, StatusWords) {
  EXPECT_EQ(to_string(PropertyResult::Status::kVerified), "verified");
  EXPECT_EQ(to_string(PropertyResult::Status::kAttack), "ATTACK");
  EXPECT_EQ(to_string(PropertyResult::Status::kNotApplicable), "n/a");
}

TEST(Report, ContainsPipelineAndVerdictSections) {
  std::string md = render_report(srs_report());
  EXPECT_TRUE(contains(md, "# ProChecker report: srsue"));
  EXPECT_TRUE(contains(md, "## Pipeline"));
  EXPECT_TRUE(contains(md, "## Conformance"));
  EXPECT_TRUE(contains(md, "## Verdicts"));
  EXPECT_TRUE(contains(md, "Table I rows detected:"));
  EXPECT_TRUE(contains(md, "P1"));
  EXPECT_TRUE(contains(md, "I1"));
}

TEST(Report, AttacksListedVerifiedHiddenByDefault) {
  std::string md = render_report(srs_report());
  EXPECT_TRUE(contains(md, "### S01 — ATTACK"));
  EXPECT_TRUE(contains(md, "### S05 — ATTACK"));
  EXPECT_FALSE(contains(md, "### S20"));  // verified: hidden by default
}

TEST(Report, IncludeVerifiedOption) {
  ReportOptions options;
  options.include_verified = true;
  std::string md = render_report(srs_report(), options);
  EXPECT_TRUE(contains(md, "### S20 — verified"));
  EXPECT_TRUE(contains(md, "### P04 — n/a"));
}

TEST(Report, TracesIncludedOnRequest) {
  ReportOptions options;
  options.include_traces = true;
  std::string md = render_report(srs_report(), options);
  EXPECT_TRUE(contains(md, "```"));
  EXPECT_TRUE(contains(md, "adv_"));  // an adversary step in some trace
}

TEST(Report, CegarRefinementsShown) {
  ReportOptions options;
  options.include_verified = true;
  std::string md = render_report(srs_report(), options);
  // S20 verifies only after the CPV prunes the fabricated attach_accept.
  EXPECT_TRUE(contains(md, "CEGAR"));
  EXPECT_TRUE(contains(md, "banned"));
}

TEST(Report, FindingsMatrix) {
  const ImplementationReport& rep = srs_report();
  std::string md = render_findings_matrix({&rep, &rep});
  EXPECT_TRUE(contains(md, "| Property | Row | srsue | srsue |"));
  EXPECT_TRUE(contains(md, "| S01 | P1 | ATTACK | ATTACK |"));
  // Verified-everywhere rows omitted.
  EXPECT_FALSE(contains(md, "| S20 |"));
}

TEST(Report, EmptyMatrix) {
  std::string md = render_findings_matrix({});
  EXPECT_TRUE(contains(md, "| Property | Row |"));
}

}  // namespace
}  // namespace procheck::checker
