#include <gtest/gtest.h>

#include "nas/crypto.h"

namespace procheck::nas {
namespace {

const Bytes kRand{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
constexpr std::uint64_t kK = 0x5EC2E7ULL;

TEST(Milenage, FunctionsAreDomainSeparated) {
  // f1, f2, f5, f1*, f5* under the same key/inputs must all differ — they
  // simulate independent primitives.
  std::uint64_t f1 = f1_mac(kK, 10, kRand, 0x8000);
  std::uint64_t f2 = f2_res(kK, kRand);
  std::uint64_t f5 = f5_ak(kK, kRand);
  std::uint64_t f1s = f1star_mac(kK, 10, kRand);
  std::uint64_t f5s = f5star_ak(kK, kRand);
  EXPECT_NE(f1, f2);
  EXPECT_NE(f2, f5);
  EXPECT_NE(f1, f1s);
  EXPECT_NE(f5, f5s);
}

TEST(Milenage, KeyDependence) {
  EXPECT_NE(f2_res(1, kRand), f2_res(2, kRand));
  EXPECT_NE(f1_mac(1, 10, kRand, 0), f1_mac(2, 10, kRand, 0));
}

TEST(Milenage, InputSensitivity) {
  EXPECT_NE(f1_mac(kK, 10, kRand, 0x8000), f1_mac(kK, 11, kRand, 0x8000));
  EXPECT_NE(f1_mac(kK, 10, kRand, 0x8000), f1_mac(kK, 10, kRand, 0x8001));
  Bytes other = kRand;
  other[0] ^= 1;
  EXPECT_NE(f1_mac(kK, 10, kRand, 0x8000), f1_mac(kK, 10, other, 0x8000));
}

TEST(Milenage, AkIs48Bit) {
  EXPECT_EQ(f5_ak(kK, kRand) & ~kSqnMask, 0u);
  EXPECT_EQ(f5star_ak(kK, kRand) & ~kSqnMask, 0u);
}

TEST(KeyHierarchy, DistinctKeysPerLevel) {
  std::uint64_t kasme = derive_kasme(kK, kRand, 10);
  std::uint64_t k_int = derive_k_nas_int(kasme, 1);
  std::uint64_t k_enc = derive_k_nas_enc(kasme, 1);
  EXPECT_NE(kasme, k_int);
  EXPECT_NE(kasme, k_enc);
  EXPECT_NE(k_int, k_enc);
}

TEST(KeyHierarchy, SqnBindsKasme) {
  // P1's key desynchronization: a different SQN yields a different KASME.
  EXPECT_NE(derive_kasme(kK, kRand, 10), derive_kasme(kK, kRand, 11));
}

TEST(KeyHierarchy, AlgorithmIdBindsNasKeys) {
  std::uint64_t kasme = derive_kasme(kK, kRand, 10);
  EXPECT_NE(derive_k_nas_int(kasme, 1), derive_k_nas_int(kasme, 2));
}

TEST(NasMac, CountAndDirectionBound) {
  Bytes payload{1, 2, 3};
  std::uint64_t m = nas_mac(7, 5, Direction::kUplink, payload);
  EXPECT_EQ(m, nas_mac(7, 5, Direction::kUplink, payload));
  EXPECT_NE(m, nas_mac(7, 6, Direction::kUplink, payload));
  EXPECT_NE(m, nas_mac(7, 5, Direction::kDownlink, payload));
  EXPECT_NE(m, nas_mac(8, 5, Direction::kUplink, payload));
  EXPECT_NE(m, nas_mac(7, 5, Direction::kUplink, Bytes{1, 2, 4}));
}

TEST(NasCipher, IsInvolution) {
  Bytes data{0x10, 0x20, 0x30, 0x40, 0x50};
  Bytes enc = nas_cipher(9, 3, Direction::kDownlink, data);
  EXPECT_NE(enc, data);
  EXPECT_EQ(nas_cipher(9, 3, Direction::kDownlink, enc), data);
}

TEST(NasCipher, WrongParametersGarble) {
  Bytes data{0x10, 0x20, 0x30};
  Bytes enc = nas_cipher(9, 3, Direction::kDownlink, data);
  EXPECT_NE(nas_cipher(9, 4, Direction::kDownlink, enc), data);   // wrong count
  EXPECT_NE(nas_cipher(8, 3, Direction::kDownlink, enc), data);   // wrong key
  EXPECT_NE(nas_cipher(9, 3, Direction::kUplink, enc), data);     // wrong direction
}

TEST(NasCipher, EmptyInput) {
  EXPECT_TRUE(nas_cipher(9, 3, Direction::kUplink, {}).empty());
}

TEST(Autn, RoundTrip) {
  Autn a{0x123456789ABCULL & kSqnMask, 0x8000, 0xFEED};
  auto back = Autn::decode(a.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);
}

TEST(Autn, RejectsWrongLength) {
  Autn a{1, 2, 3};
  Bytes wire = a.encode();
  wire.pop_back();
  EXPECT_FALSE(Autn::decode(wire).has_value());
  wire = a.encode();
  wire.push_back(0);
  EXPECT_FALSE(Autn::decode(wire).has_value());
}

TEST(Autn, MasksSqnTo48Bits) {
  Autn a{~0ULL, 0, 0};
  auto back = Autn::decode(a.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sqn_xor_ak, kSqnMask);
}

TEST(Auts, RoundTrip) {
  Auts a{0xABCDEFULL, 0x1234567890ULL};
  auto back = Auts::decode(a.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);
}

TEST(Auts, RejectsWrongLength) {
  EXPECT_FALSE(Auts::decode({1, 2, 3}).has_value());
  EXPECT_FALSE(Auts::decode({}).has_value());
}

}  // namespace
}  // namespace procheck::nas
