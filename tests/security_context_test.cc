#include <gtest/gtest.h>

#include "nas/security_context.h"

namespace procheck::nas {
namespace {

SecurityContext make_ctx() {
  SecurityContext ctx;
  ctx.establish(/*kasme=*/0xCAFE, /*eia=*/1, /*eea=*/1);
  return ctx;
}

NasMessage sample_message() {
  NasMessage m(MsgType::kGutiReallocationCommand);
  m.set_s("guti", "guti-7");
  return m;
}

TEST(SecurityContext, EstablishDerivesKeysAndResetsCounts) {
  SecurityContext ctx = make_ctx();
  EXPECT_TRUE(ctx.valid);
  EXPECT_NE(ctx.k_nas_int, 0u);
  EXPECT_NE(ctx.k_nas_enc, 0u);
  EXPECT_NE(ctx.k_nas_int, ctx.k_nas_enc);
  EXPECT_EQ(ctx.ul_count, 0u);
  EXPECT_EQ(ctx.dl_count, 0u);
}

TEST(SecurityContext, ClearInvalidates) {
  SecurityContext ctx = make_ctx();
  ctx.clear();
  EXPECT_FALSE(ctx.valid);
  EXPECT_EQ(ctx.kasme, 0u);
}

TEST(Protect, RoundTripCiphered) {
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kDownlink,
                       SecHdr::kIntegrityCiphered);
  EXPECT_EQ(pdu.sec_hdr, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(pdu.count, 0u);
  UnprotectResult res = unprotect(pdu, receiver, Direction::kDownlink);
  EXPECT_EQ(res.status, UnprotectResult::Status::kOk);
  EXPECT_TRUE(res.mac_checked);
  EXPECT_EQ(res.msg, sample_message());
}

TEST(Protect, RoundTripIntegrityOnlyPayloadVisible) {
  SecurityContext sender = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kDownlink, SecHdr::kIntegrity);
  // Integrity-only payload is cleartext (the SMC property the UE relies on).
  auto direct = decode_payload(pdu.payload);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*direct, sample_message());
}

TEST(Protect, CipheredPayloadIsNotCleartext) {
  SecurityContext sender = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kDownlink,
                       SecHdr::kIntegrityCiphered);
  EXPECT_NE(pdu.payload, encode_payload(sample_message()));
}

TEST(Protect, CountAdvancesPerDirection) {
  SecurityContext ctx = make_ctx();
  NasPdu a = protect(sample_message(), ctx, Direction::kDownlink, SecHdr::kIntegrityCiphered);
  NasPdu b = protect(sample_message(), ctx, Direction::kDownlink, SecHdr::kIntegrityCiphered);
  NasPdu c = protect(sample_message(), ctx, Direction::kUplink, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(a.count, 0u);
  EXPECT_EQ(b.count, 1u);
  EXPECT_EQ(c.count, 0u);  // independent uplink counter
}

TEST(Unprotect, DetectsPayloadTamper) {
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  pdu.payload[0] ^= 0xFF;
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kUplink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, DetectsMacTamper) {
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  pdu.mac ^= 1;
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kUplink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, DetectsCountTamper) {
  // The COUNT participates in the MAC: re-stamping an old message with a
  // fresh count (a counter-forging attempt) fails integrity.
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  pdu.count += 1;
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kUplink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, WrongDirectionFails) {
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kDownlink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, WrongKeysFail) {
  SecurityContext sender = make_ctx();
  SecurityContext other;
  other.establish(0xBEEF, 1, 1);
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(unprotect(pdu, other, Direction::kUplink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, InvalidContextFailsProtected) {
  SecurityContext sender = make_ctx();
  SecurityContext invalid;  // never established
  NasPdu pdu = protect(sample_message(), sender, Direction::kUplink, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(unprotect(pdu, invalid, Direction::kUplink).status,
            UnprotectResult::Status::kMacFailure);
}

TEST(Unprotect, PlainNeedsNoContext) {
  SecurityContext invalid;
  NasPdu pdu = encode_plain(sample_message());
  UnprotectResult res = unprotect(pdu, invalid, Direction::kDownlink);
  EXPECT_EQ(res.status, UnprotectResult::Status::kOk);
  EXPECT_FALSE(res.mac_checked);
  EXPECT_EQ(res.msg, sample_message());
}

TEST(Unprotect, MalformedPlainRejected) {
  NasPdu pdu;
  pdu.payload = {0xFF, 0xFF};
  EXPECT_EQ(unprotect(pdu, make_ctx(), Direction::kDownlink).status,
            UnprotectResult::Status::kMalformed);
}

TEST(Unprotect, ReplayedPduStillVerifies) {
  // Verbatim replays carry a valid MAC — the COUNT policy (the receiver's
  // job) is the only defense; this is the I1/I3 attack surface.
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  NasPdu pdu = protect(sample_message(), sender, Direction::kDownlink, SecHdr::kIntegrityCiphered);
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kDownlink).status,
            UnprotectResult::Status::kOk);
  EXPECT_EQ(unprotect(pdu, receiver, Direction::kDownlink).status,
            UnprotectResult::Status::kOk);
}

class ProtectRoundTripSweep
    : public ::testing::TestWithParam<std::tuple<Direction, SecHdr>> {};

TEST_P(ProtectRoundTripSweep, RoundTrips) {
  auto [dir, hdr] = GetParam();
  SecurityContext sender = make_ctx();
  SecurityContext receiver = make_ctx();
  for (int i = 0; i < 5; ++i) {
    NasMessage m(MsgType::kEmmInformation);
    m.set_u("seq", static_cast<std::uint64_t>(i));
    NasPdu pdu = protect(m, sender, dir, hdr);
    UnprotectResult res = unprotect(pdu, receiver, dir);
    ASSERT_EQ(res.status, UnprotectResult::Status::kOk);
    EXPECT_EQ(res.msg, m);
    EXPECT_EQ(res.count, static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DirectionsAndHeaders, ProtectRoundTripSweep,
    ::testing::Combine(::testing::Values(Direction::kUplink, Direction::kDownlink),
                       ::testing::Values(SecHdr::kIntegrity, SecHdr::kIntegrityCiphered)));

}  // namespace
}  // namespace procheck::nas
