// ThreadPool / parallel_for tests. These run under the `tsan` ctest label
// (ThreadSanitizer preset) as well as the default suite: they exercise the
// submit/wait protocol, dynamic scheduling, and the pre-sized-result
// pattern the parallel analysis relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace procheck {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait();  // must not hang
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // no explicit wait: the destructor must drain before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
}

TEST(ThreadPool, CancelPendingShedsQueuedTasksOnly) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Occupy the single worker so everything behind it stays queued.
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  std::size_t dropped = pool.cancel_pending();
  release = true;
  pool.wait();
  // The in-flight task always completes; dropped + completed covers the rest.
  EXPECT_EQ(ran.load(), 1 + (20 - static_cast<int>(dropped)));
  // The pool stays usable after a shed.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 2 + (20 - static_cast<int>(dropped)));
}

TEST(ThreadPool, CancelPendingOnIdlePoolIsEmpty) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.cancel_pending(), 0u);
  pool.wait();  // must not hang after a no-op shed
}

TEST(CancelToken, FiresAndResets) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(8, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SequentialModeRunsInOrderOnCallingThread) {
  std::vector<std::size_t> order;
  parallel_for(1, 10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // no pool, no reordering
}

TEST(ParallelFor, ResultsByIndexMatchSequential) {
  // The determinism pattern used by the analysis fan-out: workers write
  // disjoint slots of a pre-sized vector, so the output is order-free.
  std::vector<int> seq(100), par(100);
  parallel_for(1, seq.size(), [&](std::size_t i) { seq[i] = static_cast<int>(i * i); });
  parallel_for(7, par.size(), [&](std::size_t i) { par[i] = static_cast<int>(i * i); });
  EXPECT_EQ(seq, par);
}

TEST(ParallelFor, EmptyAndSingleCounts) {
  int runs = 0;
  parallel_for(4, 0, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  parallel_for(4, 1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace procheck
