# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nas_messages_test[1]_include.cmake")
include("/root/repo/build/tests/nas_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/nas_sqn_test[1]_include.cmake")
include("/root/repo/build/tests/security_context_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/fsm_test[1]_include.cmake")
include("/root/repo/build/tests/ue_test[1]_include.cmake")
include("/root/repo/build/tests/mme_test[1]_include.cmake")
include("/root/repo/build/tests/nr_test[1]_include.cmake")
include("/root/repo/build/tests/rrc_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/extractor_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/threat_test[1]_include.cmake")
include("/root/repo/build/tests/cpv_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
add_test(checker_test "/root/repo/build/tests/checker_test")
set_tests_properties(checker_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;38;procheck_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(report_test "/root/repo/build/tests/report_test")
set_tests_properties(report_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;39;procheck_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(replay_test "/root/repo/build/tests/replay_test")
set_tests_properties(replay_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;40;procheck_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(learner_test "/root/repo/build/tests/learner_test")
set_tests_properties(learner_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;41;procheck_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;42;procheck_test_monolithic;/root/repo/tests/CMakeLists.txt;0;")
