file(REMOVE_RECURSE
  "CMakeFiles/threat_test.dir/threat_test.cc.o"
  "CMakeFiles/threat_test.dir/threat_test.cc.o.d"
  "threat_test"
  "threat_test.pdb"
  "threat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
