# Empty dependencies file for cpv_test.
# This may be replaced when dependencies are built.
