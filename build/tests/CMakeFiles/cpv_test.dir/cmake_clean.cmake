file(REMOVE_RECURSE
  "CMakeFiles/cpv_test.dir/cpv_test.cc.o"
  "CMakeFiles/cpv_test.dir/cpv_test.cc.o.d"
  "cpv_test"
  "cpv_test.pdb"
  "cpv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
