
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpv_test.cc" "tests/CMakeFiles/cpv_test.dir/cpv_test.cc.o" "gcc" "tests/CMakeFiles/cpv_test.dir/cpv_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpv/CMakeFiles/procheck_cpv.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/procheck_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/threat/CMakeFiles/procheck_threat.dir/DependInfo.cmake"
  "/root/repo/build/src/extractor/CMakeFiles/procheck_extractor.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/procheck_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/procheck_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/procheck_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/procheck_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/mme/CMakeFiles/procheck_mme.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/procheck_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/procheck_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/procheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
