# Empty dependencies file for nas_messages_test.
# This may be replaced when dependencies are built.
