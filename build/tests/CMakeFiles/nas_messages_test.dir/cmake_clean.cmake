file(REMOVE_RECURSE
  "CMakeFiles/nas_messages_test.dir/nas_messages_test.cc.o"
  "CMakeFiles/nas_messages_test.dir/nas_messages_test.cc.o.d"
  "nas_messages_test"
  "nas_messages_test.pdb"
  "nas_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
