# Empty dependencies file for nas_sqn_test.
# This may be replaced when dependencies are built.
