file(REMOVE_RECURSE
  "CMakeFiles/nas_sqn_test.dir/nas_sqn_test.cc.o"
  "CMakeFiles/nas_sqn_test.dir/nas_sqn_test.cc.o.d"
  "nas_sqn_test"
  "nas_sqn_test.pdb"
  "nas_sqn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_sqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
