# Empty dependencies file for mme_test.
# This may be replaced when dependencies are built.
