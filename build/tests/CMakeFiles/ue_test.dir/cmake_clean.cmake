file(REMOVE_RECURSE
  "CMakeFiles/ue_test.dir/ue_test.cc.o"
  "CMakeFiles/ue_test.dir/ue_test.cc.o.d"
  "ue_test"
  "ue_test.pdb"
  "ue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
