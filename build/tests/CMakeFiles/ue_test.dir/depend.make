# Empty dependencies file for ue_test.
# This may be replaced when dependencies are built.
