# Empty compiler generated dependencies file for nas_crypto_test.
# This may be replaced when dependencies are built.
