file(REMOVE_RECURSE
  "CMakeFiles/nas_crypto_test.dir/nas_crypto_test.cc.o"
  "CMakeFiles/nas_crypto_test.dir/nas_crypto_test.cc.o.d"
  "nas_crypto_test"
  "nas_crypto_test.pdb"
  "nas_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
