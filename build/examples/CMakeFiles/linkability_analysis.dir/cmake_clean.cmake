file(REMOVE_RECURSE
  "CMakeFiles/linkability_analysis.dir/linkability_analysis.cpp.o"
  "CMakeFiles/linkability_analysis.dir/linkability_analysis.cpp.o.d"
  "linkability_analysis"
  "linkability_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkability_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
