# Empty compiler generated dependencies file for linkability_analysis.
# This may be replaced when dependencies are built.
