file(REMOVE_RECURSE
  "CMakeFiles/implementation_audit.dir/implementation_audit.cpp.o"
  "CMakeFiles/implementation_audit.dir/implementation_audit.cpp.o.d"
  "implementation_audit"
  "implementation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implementation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
