# Empty compiler generated dependencies file for implementation_audit.
# This may be replaced when dependencies are built.
