# Empty dependencies file for attack_discovery.
# This may be replaced when dependencies are built.
