file(REMOVE_RECURSE
  "CMakeFiles/attack_discovery.dir/attack_discovery.cpp.o"
  "CMakeFiles/attack_discovery.dir/attack_discovery.cpp.o.d"
  "attack_discovery"
  "attack_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
