file(REMOVE_RECURSE
  "CMakeFiles/procheck_checker.dir/baseline.cc.o"
  "CMakeFiles/procheck_checker.dir/baseline.cc.o.d"
  "CMakeFiles/procheck_checker.dir/cegar.cc.o"
  "CMakeFiles/procheck_checker.dir/cegar.cc.o.d"
  "CMakeFiles/procheck_checker.dir/prochecker.cc.o"
  "CMakeFiles/procheck_checker.dir/prochecker.cc.o.d"
  "CMakeFiles/procheck_checker.dir/property.cc.o"
  "CMakeFiles/procheck_checker.dir/property.cc.o.d"
  "CMakeFiles/procheck_checker.dir/report.cc.o"
  "CMakeFiles/procheck_checker.dir/report.cc.o.d"
  "libprocheck_checker.a"
  "libprocheck_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
