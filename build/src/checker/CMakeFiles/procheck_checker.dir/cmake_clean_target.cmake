file(REMOVE_RECURSE
  "libprocheck_checker.a"
)
