# Empty dependencies file for procheck_checker.
# This may be replaced when dependencies are built.
