# Empty dependencies file for prochecker.
# This may be replaced when dependencies are built.
