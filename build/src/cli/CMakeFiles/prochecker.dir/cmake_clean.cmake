file(REMOVE_RECURSE
  "CMakeFiles/prochecker.dir/main.cc.o"
  "CMakeFiles/prochecker.dir/main.cc.o.d"
  "prochecker"
  "prochecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prochecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
