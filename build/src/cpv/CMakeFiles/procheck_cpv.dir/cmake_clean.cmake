file(REMOVE_RECURSE
  "CMakeFiles/procheck_cpv.dir/knowledge.cc.o"
  "CMakeFiles/procheck_cpv.dir/knowledge.cc.o.d"
  "CMakeFiles/procheck_cpv.dir/lte_crypto.cc.o"
  "CMakeFiles/procheck_cpv.dir/lte_crypto.cc.o.d"
  "CMakeFiles/procheck_cpv.dir/term.cc.o"
  "CMakeFiles/procheck_cpv.dir/term.cc.o.d"
  "libprocheck_cpv.a"
  "libprocheck_cpv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_cpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
