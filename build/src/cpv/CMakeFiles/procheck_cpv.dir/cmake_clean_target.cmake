file(REMOVE_RECURSE
  "libprocheck_cpv.a"
)
