# Empty dependencies file for procheck_cpv.
# This may be replaced when dependencies are built.
