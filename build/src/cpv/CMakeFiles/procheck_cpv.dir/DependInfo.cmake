
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpv/knowledge.cc" "src/cpv/CMakeFiles/procheck_cpv.dir/knowledge.cc.o" "gcc" "src/cpv/CMakeFiles/procheck_cpv.dir/knowledge.cc.o.d"
  "/root/repo/src/cpv/lte_crypto.cc" "src/cpv/CMakeFiles/procheck_cpv.dir/lte_crypto.cc.o" "gcc" "src/cpv/CMakeFiles/procheck_cpv.dir/lte_crypto.cc.o.d"
  "/root/repo/src/cpv/term.cc" "src/cpv/CMakeFiles/procheck_cpv.dir/term.cc.o" "gcc" "src/cpv/CMakeFiles/procheck_cpv.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/procheck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/procheck_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/procheck_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/procheck_mc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
