file(REMOVE_RECURSE
  "libprocheck_testing.a"
)
