# Empty dependencies file for procheck_testing.
# This may be replaced when dependencies are built.
