file(REMOVE_RECURSE
  "CMakeFiles/procheck_testing.dir/conformance.cc.o"
  "CMakeFiles/procheck_testing.dir/conformance.cc.o.d"
  "CMakeFiles/procheck_testing.dir/replay.cc.o"
  "CMakeFiles/procheck_testing.dir/replay.cc.o.d"
  "CMakeFiles/procheck_testing.dir/testbed.cc.o"
  "CMakeFiles/procheck_testing.dir/testbed.cc.o.d"
  "libprocheck_testing.a"
  "libprocheck_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
