file(REMOVE_RECURSE
  "libprocheck_nr.a"
)
