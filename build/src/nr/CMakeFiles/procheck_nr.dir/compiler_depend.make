# Empty compiler generated dependencies file for procheck_nr.
# This may be replaced when dependencies are built.
