file(REMOVE_RECURSE
  "CMakeFiles/procheck_nr.dir/nr_stack.cc.o"
  "CMakeFiles/procheck_nr.dir/nr_stack.cc.o.d"
  "libprocheck_nr.a"
  "libprocheck_nr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_nr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
