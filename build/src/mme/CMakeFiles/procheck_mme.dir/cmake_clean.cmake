file(REMOVE_RECURSE
  "CMakeFiles/procheck_mme.dir/mme_nas.cc.o"
  "CMakeFiles/procheck_mme.dir/mme_nas.cc.o.d"
  "libprocheck_mme.a"
  "libprocheck_mme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_mme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
