# Empty dependencies file for procheck_mme.
# This may be replaced when dependencies are built.
