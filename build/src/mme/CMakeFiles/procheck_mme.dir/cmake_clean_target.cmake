file(REMOVE_RECURSE
  "libprocheck_mme.a"
)
