# Empty compiler generated dependencies file for procheck_extractor.
# This may be replaced when dependencies are built.
