file(REMOVE_RECURSE
  "CMakeFiles/procheck_extractor.dir/extractor.cc.o"
  "CMakeFiles/procheck_extractor.dir/extractor.cc.o.d"
  "libprocheck_extractor.a"
  "libprocheck_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
