file(REMOVE_RECURSE
  "libprocheck_extractor.a"
)
