# Empty compiler generated dependencies file for procheck_mc.
# This may be replaced when dependencies are built.
