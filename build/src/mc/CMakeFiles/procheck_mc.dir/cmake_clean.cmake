file(REMOVE_RECURSE
  "CMakeFiles/procheck_mc.dir/checker.cc.o"
  "CMakeFiles/procheck_mc.dir/checker.cc.o.d"
  "CMakeFiles/procheck_mc.dir/model.cc.o"
  "CMakeFiles/procheck_mc.dir/model.cc.o.d"
  "libprocheck_mc.a"
  "libprocheck_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
