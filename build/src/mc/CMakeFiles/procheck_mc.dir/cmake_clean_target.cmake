file(REMOVE_RECURSE
  "libprocheck_mc.a"
)
