file(REMOVE_RECURSE
  "libprocheck_learner.a"
)
