file(REMOVE_RECURSE
  "CMakeFiles/procheck_learner.dir/lstar.cc.o"
  "CMakeFiles/procheck_learner.dir/lstar.cc.o.d"
  "CMakeFiles/procheck_learner.dir/sul.cc.o"
  "CMakeFiles/procheck_learner.dir/sul.cc.o.d"
  "libprocheck_learner.a"
  "libprocheck_learner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_learner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
