# Empty compiler generated dependencies file for procheck_learner.
# This may be replaced when dependencies are built.
