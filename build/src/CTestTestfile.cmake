# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nas")
subdirs("fsm")
subdirs("instrument")
subdirs("ue")
subdirs("mme")
subdirs("nr")
subdirs("rrc")
subdirs("testing")
subdirs("extractor")
subdirs("mc")
subdirs("threat")
subdirs("cpv")
subdirs("checker")
subdirs("learner")
subdirs("cli")
