file(REMOVE_RECURSE
  "libprocheck_common.a"
)
