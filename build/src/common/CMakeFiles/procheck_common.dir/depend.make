# Empty dependencies file for procheck_common.
# This may be replaced when dependencies are built.
