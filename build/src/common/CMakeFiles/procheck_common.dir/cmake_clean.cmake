file(REMOVE_RECURSE
  "CMakeFiles/procheck_common.dir/bytes.cc.o"
  "CMakeFiles/procheck_common.dir/bytes.cc.o.d"
  "CMakeFiles/procheck_common.dir/rng.cc.o"
  "CMakeFiles/procheck_common.dir/rng.cc.o.d"
  "CMakeFiles/procheck_common.dir/strings.cc.o"
  "CMakeFiles/procheck_common.dir/strings.cc.o.d"
  "CMakeFiles/procheck_common.dir/table.cc.o"
  "CMakeFiles/procheck_common.dir/table.cc.o.d"
  "libprocheck_common.a"
  "libprocheck_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
