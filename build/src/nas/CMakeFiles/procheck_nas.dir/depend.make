# Empty dependencies file for procheck_nas.
# This may be replaced when dependencies are built.
