
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/crypto.cc" "src/nas/CMakeFiles/procheck_nas.dir/crypto.cc.o" "gcc" "src/nas/CMakeFiles/procheck_nas.dir/crypto.cc.o.d"
  "/root/repo/src/nas/messages.cc" "src/nas/CMakeFiles/procheck_nas.dir/messages.cc.o" "gcc" "src/nas/CMakeFiles/procheck_nas.dir/messages.cc.o.d"
  "/root/repo/src/nas/security_context.cc" "src/nas/CMakeFiles/procheck_nas.dir/security_context.cc.o" "gcc" "src/nas/CMakeFiles/procheck_nas.dir/security_context.cc.o.d"
  "/root/repo/src/nas/sqn.cc" "src/nas/CMakeFiles/procheck_nas.dir/sqn.cc.o" "gcc" "src/nas/CMakeFiles/procheck_nas.dir/sqn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/procheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
