file(REMOVE_RECURSE
  "CMakeFiles/procheck_nas.dir/crypto.cc.o"
  "CMakeFiles/procheck_nas.dir/crypto.cc.o.d"
  "CMakeFiles/procheck_nas.dir/messages.cc.o"
  "CMakeFiles/procheck_nas.dir/messages.cc.o.d"
  "CMakeFiles/procheck_nas.dir/security_context.cc.o"
  "CMakeFiles/procheck_nas.dir/security_context.cc.o.d"
  "CMakeFiles/procheck_nas.dir/sqn.cc.o"
  "CMakeFiles/procheck_nas.dir/sqn.cc.o.d"
  "libprocheck_nas.a"
  "libprocheck_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
