file(REMOVE_RECURSE
  "libprocheck_nas.a"
)
