file(REMOVE_RECURSE
  "libprocheck_instrument.a"
)
