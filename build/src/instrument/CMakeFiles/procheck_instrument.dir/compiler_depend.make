# Empty compiler generated dependencies file for procheck_instrument.
# This may be replaced when dependencies are built.
