file(REMOVE_RECURSE
  "CMakeFiles/procheck_instrument.dir/source_instrumentor.cc.o"
  "CMakeFiles/procheck_instrument.dir/source_instrumentor.cc.o.d"
  "CMakeFiles/procheck_instrument.dir/trace_log.cc.o"
  "CMakeFiles/procheck_instrument.dir/trace_log.cc.o.d"
  "libprocheck_instrument.a"
  "libprocheck_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
