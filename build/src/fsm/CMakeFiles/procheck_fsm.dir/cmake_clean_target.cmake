file(REMOVE_RECURSE
  "libprocheck_fsm.a"
)
