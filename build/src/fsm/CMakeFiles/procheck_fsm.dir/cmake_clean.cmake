file(REMOVE_RECURSE
  "CMakeFiles/procheck_fsm.dir/fsm.cc.o"
  "CMakeFiles/procheck_fsm.dir/fsm.cc.o.d"
  "CMakeFiles/procheck_fsm.dir/refinement.cc.o"
  "CMakeFiles/procheck_fsm.dir/refinement.cc.o.d"
  "libprocheck_fsm.a"
  "libprocheck_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
