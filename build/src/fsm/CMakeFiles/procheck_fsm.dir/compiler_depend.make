# Empty compiler generated dependencies file for procheck_fsm.
# This may be replaced when dependencies are built.
