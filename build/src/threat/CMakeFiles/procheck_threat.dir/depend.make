# Empty dependencies file for procheck_threat.
# This may be replaced when dependencies are built.
