file(REMOVE_RECURSE
  "libprocheck_threat.a"
)
