file(REMOVE_RECURSE
  "CMakeFiles/procheck_threat.dir/compose.cc.o"
  "CMakeFiles/procheck_threat.dir/compose.cc.o.d"
  "libprocheck_threat.a"
  "libprocheck_threat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_threat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
