# Empty compiler generated dependencies file for procheck_rrc.
# This may be replaced when dependencies are built.
