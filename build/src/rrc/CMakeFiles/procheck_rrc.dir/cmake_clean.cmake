file(REMOVE_RECURSE
  "CMakeFiles/procheck_rrc.dir/rrc_stack.cc.o"
  "CMakeFiles/procheck_rrc.dir/rrc_stack.cc.o.d"
  "libprocheck_rrc.a"
  "libprocheck_rrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_rrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
