file(REMOVE_RECURSE
  "libprocheck_rrc.a"
)
