# Empty compiler generated dependencies file for procheck_ue.
# This may be replaced when dependencies are built.
