file(REMOVE_RECURSE
  "CMakeFiles/procheck_ue.dir/emm_state.cc.o"
  "CMakeFiles/procheck_ue.dir/emm_state.cc.o.d"
  "CMakeFiles/procheck_ue.dir/profile.cc.o"
  "CMakeFiles/procheck_ue.dir/profile.cc.o.d"
  "CMakeFiles/procheck_ue.dir/ue_nas.cc.o"
  "CMakeFiles/procheck_ue.dir/ue_nas.cc.o.d"
  "libprocheck_ue.a"
  "libprocheck_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procheck_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
