file(REMOVE_RECURSE
  "libprocheck_ue.a"
)
