file(REMOVE_RECURSE
  "CMakeFiles/bench_extraction_scalability.dir/bench_extraction_scalability.cc.o"
  "CMakeFiles/bench_extraction_scalability.dir/bench_extraction_scalability.cc.o.d"
  "bench_extraction_scalability"
  "bench_extraction_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extraction_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
