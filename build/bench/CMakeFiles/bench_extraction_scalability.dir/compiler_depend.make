# Empty compiler generated dependencies file for bench_extraction_scalability.
# This may be replaced when dependencies are built.
