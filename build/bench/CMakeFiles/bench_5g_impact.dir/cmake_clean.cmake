file(REMOVE_RECURSE
  "CMakeFiles/bench_5g_impact.dir/bench_5g_impact.cc.o"
  "CMakeFiles/bench_5g_impact.dir/bench_5g_impact.cc.o.d"
  "bench_5g_impact"
  "bench_5g_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_5g_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
