# Empty compiler generated dependencies file for bench_5g_impact.
# This may be replaced when dependencies are built.
