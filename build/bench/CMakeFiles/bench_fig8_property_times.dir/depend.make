# Empty dependencies file for bench_fig8_property_times.
# This may be replaced when dependencies are built.
