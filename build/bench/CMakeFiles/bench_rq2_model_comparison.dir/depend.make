# Empty dependencies file for bench_rq2_model_comparison.
# This may be replaced when dependencies are built.
