file(REMOVE_RECURSE
  "CMakeFiles/bench_blackbox_comparison.dir/bench_blackbox_comparison.cc.o"
  "CMakeFiles/bench_blackbox_comparison.dir/bench_blackbox_comparison.cc.o.d"
  "bench_blackbox_comparison"
  "bench_blackbox_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blackbox_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
