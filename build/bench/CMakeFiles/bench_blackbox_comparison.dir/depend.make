# Empty dependencies file for bench_blackbox_comparison.
# This may be replaced when dependencies are built.
