# Empty compiler generated dependencies file for bench_ablation_freshness.
# This may be replaced when dependencies are built.
