file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_freshness.dir/bench_ablation_freshness.cc.o"
  "CMakeFiles/bench_ablation_freshness.dir/bench_ablation_freshness.cc.o.d"
  "bench_ablation_freshness"
  "bench_ablation_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
