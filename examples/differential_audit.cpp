// Differential cross-implementation audit: rediscover the seeded
// implementation deviations I1–I6 (Table I) by *diffing* stacks against the
// closed-source reference instead of analyzing each in isolation. For every
// pair the diff engine (DESIGN.md §16) enumerates behavioral divergences
// with a minimal distinguishing input sequence, then the triage layer
// model-checks each candidate catalog property on both sides and labels the
// divergence property-relevant (which property, which side violates) or
// behavioral-only. Shared deviations that never pairwise-diverge (I6: every
// profile accepts the SMC replay) surface through the common-findings tier.
//
// This supersedes hand-reading two `implementation_audit` verdict tables
// side by side for the cross-implementation story; the RQ2 refinement
// comparison against LTEInspector's manual model stays in model_comparison.
//
// Build & run:  ./build/examples/differential_audit   (takes a minute)
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "diff/diff.h"
#include "diff/sources.h"
#include "diff/triage.h"

using namespace procheck;

int main() {
  std::printf("=== Differential audit: cls (reference) vs srsue, oai ===\n\n");

  diff::SideResult reference = diff::resolve_side("profile:cls");
  if (!reference.ok) {
    std::fprintf(stderr, "error: %s\n", reference.error.c_str());
    return 1;
  }

  std::set<std::string> attacks;
  for (const char* other : {"profile:srsue", "profile:oai"}) {
    diff::SideResult target = diff::resolve_side(other);
    if (!target.ok) {
      std::fprintf(stderr, "error: %s\n", target.error.c_str());
      return 1;
    }
    diff::DiffReport report = diff::diff_machines(reference.side, target.side);
    diff::triage(report, reference.side, target.side);
    std::printf("%s", report.render().c_str());
    std::printf("\n");

    for (const diff::Finding& f : report.findings) {
      if (!f.attack_id.empty() && f.attack_id[0] == 'I') attacks.insert(f.attack_id);
    }
  }

  std::printf("implementation attacks rediscovered across the pairwise diffs:");
  for (const std::string& a : attacks) std::printf(" %s", a.c_str());
  std::printf("\n");
  const bool complete = attacks == std::set<std::string>{"I1", "I2", "I3", "I4", "I5", "I6"};
  std::printf("Table I coverage: %s\n",
              complete ? "complete (I1-I6)" : "INCOMPLETE — seeded deviations missed");
  return complete ? 0 : 1;
}
