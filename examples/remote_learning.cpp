// Remote learning: the resilient remote-SUL transport end to end.
//
//   1. Serve an in-process UE stack over loopback TCP (the framed,
//      CRC-tagged wire protocol of DESIGN.md §12) and learn its Mealy
//      machine through the socket — byte-identical to learning in process.
//   2. Put the chaos proxy on the wire (delay + fragmentation + reorder) and
//      learn again: the transport absorbs every fault, the result does not
//      change.
//   3. Point the learner at a dead port and watch it degrade *structurally*:
//      the circuit breaker opens, queries answer "sul_unavailable", and the
//      learner converges to an explicit inconclusive verdict — no hang, no
//      exception.
//   4. Run the scripted remote-conformance suite through a corrupting proxy:
//      the CRC turns flipped bits into detected framing errors, so verdicts
//      are PASS or INCONCLUSIVE, never silently wrong.
//
// Build & run:  ./build/examples/remote_learning
#include <cstdio>
#include <string>

#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_conformance.h"
#include "net/remote_sul.h"
#include "net/socket.h"
#include "net/sul_server.h"

using namespace procheck;

namespace {

learner::LearnOptions learn_options() {
  learner::LearnOptions opts;
  opts.eq_test_words = 60;
  opts.eq_test_max_length = 6;
  return opts;
}

net::RemoteSulOptions client_options(std::uint16_t port) {
  net::RemoteSulOptions opts;
  opts.port = port;
  opts.connect_timeout_seconds = 0.2;
  opts.backoff_base_seconds = 0.005;
  opts.backoff_max_seconds = 0.05;
  return opts;
}

}  // namespace

int main() {
  std::printf("=== Remote learning over a fault-tolerant socket transport ===\n\n");
  const ue::StackProfile profile = ue::StackProfile::srsue();

  // Reference: learn the machine in process, no transport at all.
  learner::UeSul local(profile);
  const learner::LearnResult reference = learner::learn_mealy(local, learn_options());
  const std::string reference_dot = reference.machine.to_fsm().to_dot("learned");
  std::printf("in-process reference: %d states, %ld membership queries\n\n",
              reference.machine.state_count, reference.membership_queries);

  // (1) The same learner over clean loopback TCP.
  std::printf("--- Step 1: learn over loopback TCP ---\n");
  {
    net::SulServer server(profile);
    if (!server.start()) {
      std::fprintf(stderr, "cannot bind a loopback port\n");
      return 1;
    }
    net::RemoteUeSul remote(client_options(server.port()));
    learner::LearnResult result = learner::learn_mealy(remote, learn_options());
    std::printf("remote learn: %d states, FSM %s the in-process reference\n\n",
                result.machine.state_count,
                result.machine.to_fsm().to_dot("learned") == reference_dot
                    ? "IDENTICAL to"
                    : "DIFFERS from");
  }

  // (2) Same link, now through the chaos proxy under a lossless regime.
  std::printf("--- Step 2: learn through delay + fragmentation + reorder ---\n");
  {
    net::SulServer server(profile);
    server.start();
    net::ChaosProxyOptions popts;
    popts.upstream_port = server.port();
    popts.faults.delay = 0.1;
    popts.faults.fragment = 0.1;
    popts.faults.reorder = 0.05;
    popts.max_delay_ms = 2;
    net::ChaosProxy proxy(popts);
    proxy.start();

    net::RemoteUeSul remote(client_options(proxy.port()));
    learner::LearnResult result = learner::learn_mealy(remote, learn_options());
    const net::RemoteSulStats stats = remote.stats();
    std::printf("chaotic link: %ld proxy faults fired, %ld reconnects, %ld framing errors\n",
                proxy.stats().faults(), stats.reconnects, stats.framing_errors);
    std::printf("result: FSM %s the in-process reference\n\n",
                result.machine.to_fsm().to_dot("learned") == reference_dot ? "IDENTICAL to"
                                                                           : "DIFFERS from");
  }

  // (3) A dead server: structured degradation instead of a hang.
  std::printf("--- Step 3: learn against a dead port ---\n");
  {
    std::uint16_t dead_port = 1;
    if (auto listener = net::TcpListener::listen(0)) dead_port = listener->port();
    // listener closed here: nothing answers on dead_port
    net::RemoteUeSul remote(client_options(dead_port));
    learner::LearnResult result = learner::learn_mealy(remote, learn_options());
    std::printf("inconclusive=%s, breaker=%s, note: %s\n\n",
                result.inconclusive ? "true" : "false",
                std::string(net::to_string(remote.breaker())).c_str(), result.note.c_str());
  }

  // (4) Corruption regime: flipped bits become detected framing errors.
  std::printf("--- Step 4: remote conformance through a corrupting proxy ---\n");
  {
    net::SulServer server(profile);
    server.start();
    net::ChaosProxyOptions popts;
    popts.upstream_port = server.port();
    popts.faults.corrupt = 0.05;
    net::ChaosProxy proxy(popts);
    proxy.start();

    net::RemoteUeSul remote(client_options(proxy.port()));
    net::RemoteConformanceReport report = net::run_remote_conformance(profile, remote);
    std::printf("%s\n", report.render().c_str());
    std::printf("proxy corrupted %ld chunks; client detected %ld framing errors; "
                "failed verdicts: %d (must be 0 — corruption is never consumed)\n",
                proxy.stats().corrupted, remote.stats().framing_errors, report.failed());
  }

  return 0;
}
