// Linkability analysis: the P2 attack (paper Fig. 6) — the observational-
// equivalence query on the extracted model, then confirmation on a live
// multi-UE cell: the adversary's fake base station replays a captured
// challenge to every device; only the victim answers with
// authentication_response, the rest answer MAC failure.
//
// Build & run:  ./build/examples/linkability_analysis
#include <cstdio>

#include "checker/prochecker.h"
#include "cpv/lte_crypto.h"
#include "testing/conformance.h"
#include "testing/testbed.h"

using namespace procheck;

int main() {
  std::printf("=== P2: Linkability using authentication_response (paper Fig. 6) ===\n\n");

  // --- Model-level: the ProVerif-style distinguishability query -------------
  std::printf("--- Phase 1: observational-equivalence query on the extracted model ---\n");
  checker::AnalysisOptions options;
  options.only_properties = {"P01", "P06", "P03"};
  checker::ImplementationReport rep =
      checker::ProChecker::analyze(ue::StackProfile::cls(), options);
  for (const checker::PropertyResult& r : rep.results) {
    std::printf("%s: %s\n", r.property_id.c_str(),
                r.status == checker::PropertyResult::Status::kAttack
                    ? "ATTACK (distinguishable)"
                    : "verified");
    if (r.equivalence) std::printf("   %s\n", r.equivalence->reason.c_str());
  }
  std::printf("\n");

  // --- Testbed: a cell with three devices -----------------------------------
  std::printf("--- Phase 2: live cell with 3 UEs; replay the victim's challenge ---\n");
  testing::Testbed tb;
  int victim = tb.add_ue(ue::StackProfile::cls(), "001010000000001", 0xA11CE);
  int ue2 = tb.add_ue(ue::StackProfile::cls(), "001010000000002", 0xB0B);
  int ue3 = tb.add_ue(ue::StackProfile::cls(), "001010000000003", 0xCAA01);
  for (int conn : {victim, ue2, ue3}) {
    if (!testing::complete_attach(tb, conn)) {
      std::printf("attach failed for conn %d\n", conn);
      return 1;
    }
  }
  std::printf("3 UEs attached (GUTIs: %s, %s, %s)\n", tb.ue(victim).guti().c_str(),
              tb.ue(ue2).guti().c_str(), tb.ue(ue3).guti().c_str());

  auto captured = testing::capture_dropped_challenge(tb, victim);
  if (!captured) {
    std::printf("challenge capture failed\n");
    return 1;
  }
  std::printf("adversary captured a challenge bound to the victim's USIM.\n\n");

  std::printf("fake base station replays the challenge to every UE in the cell:\n");
  for (int conn : {victim, ue2, ue3}) {
    auto out = tb.ue(conn).handle_downlink(*captured);
    std::string response = "(silent)";
    if (!out.empty()) {
      auto msg = nas::decode_payload(out[0].payload);
      if (msg) {
        response = std::string(standard_name(msg->type));
        if (msg->has("cause")) response += " cause=" + msg->get_s("cause");
      }
    }
    std::printf("  %s UE %d (imsi %s): %s\n", conn == victim ? "victim " : "other  ", conn,
                tb.ue(conn).imsi().c_str(), response.c_str());
  }
  std::printf("\nThe victim is uniquely identified by its authentication_response — its\n"
              "presence in this cell is confirmed without knowing IMSI<->GUTI mappings.\n");

  std::printf("\n--- Phase 3: the mitigation (Annex C.2.2 freshness limit L) ---\n");
  testing::Testbed tb2;
  ue::StackProfile mitigated = ue::StackProfile::cls();
  mitigated.sqn_freshness_limit = 1;
  int v2 = tb2.add_ue(mitigated, "001010000000001", 0xA11CE);
  testing::complete_attach(tb2, v2);
  auto captured2 = testing::capture_dropped_challenge(tb2, v2);
  if (captured2) {
    // Age the capture beyond the window.
    for (int i = 0; i < 2; ++i) {
      tb2.ue_detach(v2);
      tb2.run_until_quiet();
      tb2.power_on(v2);
      tb2.run_until_quiet();
    }
    auto out = tb2.ue(v2).handle_downlink(*captured2);
    std::string response = "(silent)";
    if (!out.empty()) {
      auto msg = nas::decode_payload(out[0].payload);
      if (msg) response = std::string(standard_name(msg->type)) + " cause=" + msg->get_s("cause");
    }
    std::printf("victim with L=1 answers the stale challenge with: %s\n", response.c_str());
    std::printf("=> same failure class as every other UE: the cell is no longer linkable.\n");
  }
  return 0;
}
