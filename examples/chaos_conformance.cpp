// Chaos conformance: the fault-injection channel model end to end.
//
//   1. Attach a UE over a lossy channel and watch the retransmission
//      machinery recover what the channel drops.
//   2. Push the loss to 100% and watch the UE give up *explicitly* after
//      its retry budget (no livelock, no half-open procedure).
//   3. Run the whole conformance suite under the standard chaos regimes
//      (drop / duplicate / reorder / delay / corrupt / combined) and check
//      the chaos contract: the model extracted from each chaotic run is
//      either identical to the fault-free one, or every divergence is
//      diagnosed.
//   4. Re-extract a corrupted log in recovery mode: malformed blocks are
//      quarantined with reasons instead of silently poisoning the model.
//
// Build & run:  ./build/examples/chaos_conformance
#include <cstdio>

#include "extractor/extractor.h"
#include "testing/chaos.h"
#include "testing/conformance.h"
#include "testing/testbed.h"

using namespace procheck;

int main() {
  std::printf("=== Chaos conformance: fault injection end to end ===\n\n");
  const ue::StackProfile profile = ue::StackProfile::cls();

  // (1) Attach under 25%% bidirectional loss: retransmission recovers it.
  std::printf("--- Step 1: attach under 25%% loss ---\n");
  {
    testing::Testbed tb;
    int conn = tb.add_ue(profile, testing::kTestImsi, testing::kTestKey);
    testing::ChannelConfig cfg;
    cfg.downlink.drop = 0.25;
    cfg.uplink.drop = 0.25;
    cfg.seed = 23;
    tb.set_channel(cfg);
    bool ok = testing::complete_attach(tb, conn);
    const testing::ChannelStats& st = tb.channel()->stats();
    std::printf("attach %s: %zu/%zu downlink and %zu/%zu uplink PDUs dropped, "
                "%d UE retransmissions\n\n",
                ok ? "SUCCEEDED" : "failed", st.downlink.dropped, st.downlink.offered,
                st.uplink.dropped, st.uplink.offered, tb.ue(conn).retransmissions_sent());
  }

  // (2) Total loss: the UE must abandon, not livelock.
  std::printf("--- Step 2: attach under 100%% loss ---\n");
  {
    testing::Testbed tb;
    int conn = tb.add_ue(profile, testing::kTestImsi, testing::kTestKey);
    testing::ChannelConfig cfg;
    cfg.downlink.drop = 1.0;
    cfg.uplink.drop = 1.0;
    tb.set_channel(cfg);
    bool ok = testing::complete_attach(tb, conn);
    std::printf("attach %s after %d retransmissions; procedures abandoned: %d "
                "(timer disarmed: %s)\n\n",
                ok ? "succeeded" : "gave up", tb.ue(conn).retransmissions_sent(),
                tb.ue(conn).procedures_abandoned(),
                tb.ue(conn).retransmission_armed() ? "no" : "yes");
  }

  // (3) The full chaos matrix.
  std::printf("--- Step 3: conformance suite under every fault regime ---\n");
  for (const testing::ChaosReport& rep : testing::run_chaos_matrix(profile, 0.1)) {
    std::printf("%-14s %2d/%2d passed (baseline %2d/%2d), %3zu faults, FSM %s%s\n",
                rep.regime.c_str(), rep.chaos.passed(), rep.chaos.total(),
                rep.baseline.passed(), rep.baseline.total(), rep.channel.total_faults(),
                rep.fsm_identical ? "identical" : "diverged",
                rep.degraded() ? (rep.explained() ? " [diagnosed]" : " [UNEXPLAINED]") : "");
    for (const std::string& d : rep.diagnostics) std::printf("      %s\n", d.c_str());
  }

  // (4) Recovery-mode extraction of a corrupted log.
  std::printf("\n--- Step 4: recovery-mode extraction under bit corruption ---\n");
  {
    instrument::TraceLogger trace;
    testing::ChannelConfig cfg;
    cfg.downlink.corrupt = 0.2;
    cfg.uplink.corrupt = 0.2;
    testing::run_conformance(profile, trace, &cfg);

    extractor::ExtractionDiagnostics diag;
    extractor::ExtractionOptions opts;
    opts.initial_state = "EMM_DEREGISTERED";
    opts.recovery = true;
    opts.diagnostics = &diag;
    fsm::Fsm m = extractor::extract(trace.records(), extractor::ue_signatures(profile), opts);
    auto s = m.stats();
    std::printf("extracted %zu states / %zu transitions from %zu blocks "
                "(%zu extracted, %zu quarantined)\n",
                s.states, s.transitions, diag.blocks_total, diag.blocks_extracted,
                diag.quarantined.size());
    int shown = 0;
    for (const auto& q : diag.quarantined) {
      if (shown++ >= 5) break;
      std::printf("  quarantined block %zu (%s): %s\n", q.block_index, q.incoming.c_str(),
                  q.reason.c_str());
    }
  }
  return 0;
}
