// Quickstart: the paper's Fig. 3 running example, end to end.
//
//   1. Instrument a Fig. 3-style source file with the source-to-source
//      instrumentor (what you would run on an external codebase).
//   2. Execute one conformance test case against the live (pre-instrumented)
//      UE stack to produce the information-rich log of Fig. 3(d).
//   3. Run the model extractor (Algorithm 1 and the substate-aware variant)
//      on the log.
//   4. Print the extracted FSM and its Graphviz rendering.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "extractor/extractor.h"
#include "instrument/source_instrumentor.h"
#include "testing/conformance.h"

using namespace procheck;

namespace {

constexpr const char* kFig3Header = R"(
// Global protocol state (the instrumentor harvests these).
int emm_state;
)";

constexpr const char* kFig3Source = R"(
void air_msg_handler(msg_t* msg) {
  int msg_type = parse_type(msg);
  if (msg_type == ATTACH_ACCEPT) {
    recv_attach_accept(msg);
  }
}

void recv_attach_accept(msg_t* msg) {
  int mac_valid = check_mac(msg);
  if (!mac_valid) {
    return;
  }
  emm_state = UE_REGISTERED;
  send_attach_complete();
}
)";

}  // namespace

int main() {
  std::printf("=== ProChecker quickstart: Fig. 3 running example ===\n\n");

  // (1) Source-level instrumentation of an external codebase.
  std::printf("--- Step 1: instrument the source (paper Fig. 3(a-c)) ---\n");
  auto globals = instrument::harvest_globals(kFig3Header);
  std::printf("globals harvested from the header: ");
  for (const auto& g : globals) std::printf("%s ", g.c_str());
  std::printf("\n");
  auto instrumented = instrument::instrument_source(kFig3Source, globals);
  std::printf("instrumented %d functions (%d enter probes, %d global probes, %d local"
              " probes)\n%s\n",
              instrumented.stats.functions_instrumented, instrumented.stats.enter_probes,
              instrumented.stats.global_probes, instrumented.stats.local_probes,
              instrumented.text.c_str());

  // (2) Execute the conformance suite against the in-repo stack to get the
  // information-rich log.
  std::printf("--- Step 2: run the conformance suite on the instrumented stack ---\n");
  instrument::TraceLogger trace;
  ue::StackProfile profile = ue::StackProfile::cls();
  testing::ConformanceReport report = testing::run_conformance(profile, trace);
  std::printf("%d/%d conformance cases passed, handler coverage %.0f%%, %zu log records\n\n",
              report.passed(), report.total(), report.handler_coverage * 100,
              trace.records().size());

  std::printf("log excerpt (the Fig. 3(d) dialect):\n");
  int shown = 0;
  for (const instrument::LogRecord& rec : trace.records()) {
    if (shown++ >= 12) break;
    std::printf("  %s\n", instrument::render(rec).c_str());
  }
  std::printf("  ...\n\n");

  // (3) Model extraction.
  std::printf("--- Step 3: extract the FSM (Algorithm 1) ---\n");
  extractor::Signatures sigs = extractor::ue_signatures(profile);
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm machine = extractor::extract(trace.records(), sigs, opts);
  auto stats = machine.stats();
  std::printf("extracted FSM: %zu states, %zu transitions, %zu condition atoms, %zu action"
              " atoms\n\n",
              stats.states, stats.transitions, stats.conditions, stats.actions);

  std::printf("sample transitions:\n");
  int count = 0;
  for (const fsm::Transition& t : machine.transitions()) {
    if (count++ >= 8) break;
    std::printf("  %s\n", t.label().c_str());
  }
  std::printf("  ...\n\n");

  // (4) Graphviz export (the paper's model-generator input language).
  std::printf("--- Step 4: Graphviz rendering (pipe into `dot -Tpng`) ---\n");
  std::string dot = machine.to_dot("ue_" + profile.name);
  std::printf("%.600s...\n(%zu bytes total)\n", dot.c_str(), dot.size());
  return 0;
}
