// Implementation audit: the full 62-property ProChecker run over all three
// stack profiles — the workflow a vendor would integrate into functional
// testing (the paper's motivating use case). Prints the per-implementation
// findings grouped by Table I rows.
//
// Build & run:  ./build/examples/implementation_audit   (takes a few minutes)
#include <cstdio>
#include <map>

#include "checker/prochecker.h"
#include "checker/report.h"
#include "common/table.h"

using namespace procheck;
using checker::PropertyResult;

namespace {

const char* status_str(PropertyResult::Status s) {
  switch (s) {
    case PropertyResult::Status::kVerified:
      return "verified";
    case PropertyResult::Status::kAttack:
      return "ATTACK";
    case PropertyResult::Status::kNotApplicable:
      return "n/a";
  }
  return "?";
}

}  // namespace

int main() {
  std::map<std::string, checker::ImplementationReport> reports;
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    std::printf("analyzing %s (conformance -> extraction -> 62-property CEGAR)...\n",
                profile.name.c_str());
    reports[profile.name] = checker::ProChecker::analyze(profile);
  }
  std::printf("\n");

  // Per-implementation summaries.
  for (const auto& [name, rep] : reports) {
    std::printf("=== %s ===\n", name.c_str());
    std::printf("conformance: %d/%d passed, handler coverage %.0f%% | log: %zu records |"
                " extraction: %.3fs\n",
                rep.conformance.passed(), rep.conformance.total(),
                rep.conformance.handler_coverage * 100, rep.log_records,
                rep.extraction_seconds);
    auto s = rep.checking_model.stats();
    std::printf("checking model: %zu states, %zu transitions, %zu conditions | substate"
                " model: %zu states, %zu transitions\n",
                s.states, s.transitions, s.conditions, rep.extracted.stats().states,
                rep.extracted.stats().transitions);
    std::printf("verdicts: %d verified, %d attacks, %d not applicable\n",
                rep.verified_count(), rep.attack_count(), rep.not_applicable_count());
    std::printf("Table I rows detected: ");
    for (const std::string& id : rep.attacks_found) std::printf("%s ", id.c_str());
    std::printf("\n\n");
  }

  // Property-by-property matrix.
  TextTable t({"Property", "Type", "Row", "closed-src", "srsLTE", "OAI"});
  const auto& cls = reports.at("cls");
  const auto& srs = reports.at("srsue");
  const auto& oai = reports.at("oai");
  for (std::size_t i = 0; i < cls.results.size(); ++i) {
    const PropertyResult& c = cls.results[i];
    // Only show rows where at least one implementation is non-verified.
    if (c.status == PropertyResult::Status::kVerified &&
        srs.results[i].status == PropertyResult::Status::kVerified &&
        oai.results[i].status == PropertyResult::Status::kVerified) {
      continue;
    }
    const checker::PropertyDef& def = checker::property_catalog()[i];
    t.add_row({c.property_id,
               def.type == checker::PropertyDef::Type::kSecurity ? "sec" : "priv",
               c.attack_id.empty() ? "-" : c.attack_id, status_str(c.status),
               status_str(srs.results[i].status), status_str(oai.results[i].status)});
  }
  std::printf("Findings matrix (verified-everywhere properties omitted):\n%s\n",
              t.render().c_str());

  std::printf("Legend: ATTACK = realizable counterexample confirmed by the cryptographic\n"
              "verifier (and, for linkability rows, by the observational-equivalence\n"
              "query); n/a = the stacks do not implement the targeted procedure.\n\n");

  // Markdown rendering of the same matrix (what the CI/report integration
  // would publish).
  std::printf("Markdown findings matrix:\n%s\n",
              checker::render_findings_matrix(
                  {&reports.at("cls"), &reports.at("srsue"), &reports.at("oai")})
                  .c_str());
  return 0;
}
