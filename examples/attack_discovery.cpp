// Attack discovery: the full CEGAR pipeline on the paper's flagship
// properties, then replay of the verified P1 and P3 counterexamples against
// the live stacks on the testbed (the paper's Fig. 4 validation).
//
// Build & run:  ./build/examples/attack_discovery
#include <cstdio>

#include "checker/prochecker.h"
#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

using namespace procheck;

namespace {

void run_checker_phase() {
  std::printf("=== Phase 1: MC + CPV CEGAR on the extracted model ===\n\n");
  checker::AnalysisOptions options;
  options.only_properties = {"S01", "S02", "P01"};  // P1, P3, P2
  checker::ImplementationReport rep =
      checker::ProChecker::analyze(ue::StackProfile::cls(), options);
  threat::ThreatModel tm = checker::ProChecker::build_threat_model(rep.checking_model);

  for (const checker::PropertyResult& r : rep.results) {
    std::printf("--- property %s (%s) ---\n", r.property_id.c_str(),
                r.attack_id.empty() ? "no attack mapping" : r.attack_id.c_str());
    std::printf("status: %s after %d CEGAR iteration(s); %s\n",
                r.status == checker::PropertyResult::Status::kAttack ? "ATTACK" : "verified",
                r.iterations, r.note.c_str());
    for (const std::string& ref : r.refinements) {
      std::printf("  refinement: %s\n", ref.c_str());
    }
    if (r.counterexample) {
      std::printf("counterexample trace:\n%s",
                  r.counterexample->render(tm.model).c_str());
    }
    if (r.equivalence) {
      std::printf("observational equivalence: %s\n", r.equivalence->reason.c_str());
    }
    std::printf("\n");
  }
}

void replay_p1() {
  std::printf("=== Phase 2: replay P1 on the live testbed (paper Fig. 4) ===\n\n");
  testing::Testbed tb;
  int victim = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  if (!testing::complete_attach(tb, victim)) {
    std::printf("attach failed!?\n");
    return;
  }
  std::printf("victim attached: state=%s guti=%s auth_runs=%d\n",
              std::string(ue::to_string(tb.ue(victim).state())).c_str(),
              tb.ue(victim).guti().c_str(), tb.ue(victim).authentications_completed());

  // Step 1 (Fig. 4): the adversary's malicious UE elicits a challenge for
  // the victim's IMSI and captures it off the air.
  auto captured = testing::capture_dropped_challenge(tb, victim);
  if (!captured) {
    std::printf("failed to capture a challenge\n");
    return;
  }
  std::printf("adversary captured an authentication_request (dropped in transit; the\n"
              "victim never consumed its SQN) and can hold it for days.\n");

  // Step 2: replay the stale challenge to the registered victim.
  int auth_before = tb.ue(victim).authentications_completed();
  tb.inject_downlink(victim, *captured);
  tb.run_until_quiet();
  std::printf("replayed the stale challenge: auth runs %d -> %d (battery-draining AKA),\n"
              "UE security context valid = %d (keys desynchronized from the MME)\n",
              auth_before, tb.ue(victim).authentications_completed(),
              tb.ue(victim).security().valid ? 1 : 0);

  // Step 3: the legitimate network's protected traffic is now discarded.
  int discards_before = tb.ue(victim).protected_discards();
  tb.mme_guti_reallocation(victim);
  tb.run_until_quiet();
  std::printf("legitimate MME traffic after the desync: %d message(s) discarded by the UE\n"
              "=> service disruption until the network re-authenticates from scratch.\n\n",
              tb.ue(victim).protected_discards() - discards_before);
}

void replay_p3() {
  std::printf("=== Phase 3: replay P3 (selective security-procedure denial) ===\n\n");
  testing::Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), testing::kTestImsi, testing::kTestKey);
  testing::complete_attach(tb, conn);
  std::string guti_before = tb.ue(conn).guti();

  // MITM: surreptitiously drop exactly the GUTI reallocation commands.
  int dropped = 0;
  tb.set_downlink_interceptor([&tb, &dropped](int c, const nas::NasPdu& pdu) {
    auto msg = tb.decode(c, pdu, /*downlink=*/true);
    if (msg && msg->type == nas::MsgType::kGutiReallocationCommand) {
      ++dropped;
      return testing::AdversaryAction::drop();
    }
    return testing::AdversaryAction::pass();
  });

  tb.mme_guti_reallocation(conn);
  tb.run_until_quiet();
  tb.tick(mme::MmeNas::kTimerPeriod * (mme::MmeNas::kMaxRetransmissions + 1));

  std::printf("adversary dropped %d GUTI_reallocation_command transmissions\n", dropped);
  std::printf("MME aborted the procedure after the fifth T3450 expiry: %d abort(s)\n",
              tb.mme().procedures_aborted());
  std::printf("GUTI before: %s | after: %s (unchanged on BOTH sides => the victim stays\n"
              "trackable under the old identifier; neither side detected the denial)\n",
              guti_before.c_str(), tb.ue(conn).guti().c_str());
}

}  // namespace

int main() {
  run_checker_phase();
  replay_p1();
  replay_p3();
  return 0;
}
