// Model comparison (RQ2): extract Pro^μ from the closed-source profile's
// conformance log, build the manual LTEInspector LTE^μ, run the refinement
// checker, and print the Fig. 7 worked examples.
//
// Build & run:  ./build/examples/model_comparison
#include <cstdio>

#include "checker/baseline.h"
#include "extractor/extractor.h"
#include "fsm/refinement.h"
#include "testing/conformance.h"

using namespace procheck;

int main() {
  std::printf("=== RQ2: is the extracted model a refinement of LTEInspector's? ===\n\n");

  // Extract Pro^u.
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  fsm::Fsm pro = extractor::extract(trace.records(),
                                    extractor::ue_signatures(ue::StackProfile::cls()), opts);
  fsm::Fsm lte = checker::lteinspector_ue_model();

  auto ps = pro.stats();
  auto ls = lte.stats();
  std::printf("Pro^u (extracted):   %zu states, %zu transitions, %zu conditions, %zu actions\n",
              ps.states, ps.transitions, ps.conditions, ps.actions);
  std::printf("LTE^u (manual):      %zu states, %zu transitions, %zu conditions, %zu actions\n\n",
              ls.states, ls.transitions, ls.conditions, ls.actions);

  std::printf("state map (LTE^u state -> extracted substates, per TS 24.301):\n");
  for (const auto& [abstract, concrete] : checker::lteinspector_state_map()) {
    std::printf("  %-24s -> ", abstract.c_str());
    for (const std::string& s : concrete) std::printf("%s ", s.c_str());
    std::printf("\n");
  }
  std::printf("\n");

  fsm::RefinementReport report =
      fsm::check_refinement(lte, pro, checker::lteinspector_state_map());
  std::printf("%s\n", report.summary().c_str());

  std::printf("FIGURE 7 worked examples:\n");
  for (const fsm::TransitionMapping& tm : report.transition_mappings) {
    bool is_smc = tm.abstract.conditions.count("security_mode_command") > 0;
    bool is_detach = tm.abstract.conditions.count("detach_request") > 0 &&
                     tm.abstract.actions.count("detach_accept") > 0;
    if (!is_smc && !is_detach) continue;
    std::printf("\n(%s) %s refinement:\n", is_smc ? "i" : "ii",
                is_smc ? "stricter-condition" : "split-transition");
    std::printf("  LTEInspector: %s\n", tm.abstract.label().c_str());
    for (const fsm::Transition& t : tm.refined) {
      std::printf("  ProChecker:   %s\n", t.label().c_str());
    }
  }

  std::printf("\nTransition-mapping breakdown: %d direct, %d condition-refined, %d split, %d"
              " unmatched\n",
              report.count(fsm::TransitionMatch::kDirect),
              report.count(fsm::TransitionMatch::kConditionRefined),
              report.count(fsm::TransitionMatch::kSplit),
              report.count(fsm::TransitionMatch::kUnmatched));

  // Bonus (paper contribution 2): the FSM also detects missing test cases —
  // specification transitions never exercised by the suite.
  std::printf("\nMissing-coverage hints (LTE^u transitions with no direct image):\n");
  for (const fsm::TransitionMapping& tm : report.transition_mappings) {
    if (tm.match == fsm::TransitionMatch::kUnmatched) {
      std::printf("  NOT COVERED: %s\n", tm.abstract.label().c_str());
    }
  }
  if (report.count(fsm::TransitionMatch::kUnmatched) == 0) {
    std::printf("  (none — the conformance suite covers every abstract transition)\n");
  }
  return 0;
}
